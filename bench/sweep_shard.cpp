// Coordinator for sharded sweeps: partitions the study grid into tiles,
// spawns `sweep_worker` subprocesses (fork/exec) to compute the missing
// ones, and merges the checkpointed tile files into one map — bit-identical
// to a single-process sweep of the same grid. Rerunning against the same
// --out-dir resumes: tiles already valid on disk are skipped, so a killed
// paper-scale sweep restarts where it left off instead of from zero.
//
// Usage:
//   sweep_shard [--row-bits=16] [--min-log2=-8] [--steps-per-octave=1]
//               [--plans=all|smoke] [--workers=N] [--tiles=T]
//               [--threads-per-worker=1] [--out-dir=shard_out]
//               [--cost-model=uniform|analytic|measured]
//               [--worker=PATH]   # sweep_worker binary (default: next to me)
//               [--fork]          # forked in-process workers, no exec
//               [--serial]        # single-process reference sweep
//               [--no-resume] [--verbose]
//
// Writes DIR/tile_NNNN.rmt checkpoints plus DIR/merged.rmt and
// DIR/merged.csv. The REPRO_SHARDS env knob supplies --workers and
// REPRO_COST_MODEL supplies --cost-model when the flags are absent.
// --cost-model=measured reschedules from the wall times stamped into the
// tile files of a previous run against the same --out-dir (combine with
// --no-resume: moving tile boundaries invalidates old checkpoints anyway).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sharded_sweep.h"
#include "shard_cli.h"
#include "viz/csv_export.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

std::string DefaultWorkerPath(const char* argv0) {
  std::string self = argv0;
  size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "sweep_worker";
  return self.substr(0, slash + 1) + "sweep_worker";
}

/// The merged map is persisted as a tile covering the whole grid, so the
/// same reader (and the same byte-for-byte comparison) serves tiles and
/// full maps alike.
Status WriteMergedArtifacts(const std::string& dir,
                            const ParameterSpace& space,
                            const RobustnessMap& map) {
  RM_RETURN_IF_ERROR(EnsureDirectory(dir));
  TileSpec full;
  full.shard_id = 0;
  full.x_begin = 0;
  full.x_end = space.x_size();
  full.y_begin = 0;
  full.y_end = space.y_size();
  RM_RETURN_IF_ERROR(
      WriteMapTileFile(dir + "/merged.rmt", MapTile{full, space, map}));
  return WriteMapCsvFile(dir + "/merged.csv", map);
}

}  // namespace

int main(int argc, char** argv) {
  ShardGrid grid;
  int workers = 0;
  int tiles = 0;
  int threads_per_worker = 1;
  bool use_fork = false;
  bool serial = false;
  bool resume = true;
  bool verbose = EnvFlag("REPRO_VERBOSE");
  std::string out_dir = "shard_out";
  std::string worker_path = DefaultWorkerPath(argv[0]);
  const char* env_model = std::getenv("REPRO_COST_MODEL");
  std::string cost_model_name =
      env_model != nullptr && env_model[0] != '\0' ? env_model : "analytic";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseGridFlag(arg, &grid) || ParseIntFlag(arg, "workers", &workers) ||
        ParseIntFlag(arg, "tiles", &tiles) ||
        ParseIntFlag(arg, "threads-per-worker", &threads_per_worker) ||
        ParseFlag(arg, "out-dir", &out_dir) ||
        ParseFlag(arg, "cost-model", &cost_model_name) ||
        ParseFlag(arg, "worker", &worker_path)) {
      continue;
    }
    if (arg == "--fork") {
      use_fork = true;
    } else if (arg == "--serial") {
      serial = true;
    } else if (arg == "--no-resume") {
      resume = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "sweep_shard: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (workers == 0) workers = EnvInt("REPRO_SHARDS", 0, 0, 256);
  auto cost_model = CostModelKindFromString(cost_model_name);
  if (!cost_model.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n",
                 cost_model.status().message().c_str());
    return 2;
  }

  std::vector<PlanKind> plans = GridPlans(grid);
  if (plans.empty()) {
    std::fprintf(stderr, "sweep_shard: unknown plan set %s\n",
                 grid.plan_set.c_str());
    return 2;
  }
  ParameterSpace space = MakeGridSpace(grid);
  std::printf("sweep_shard: %zux%zu grid, %zu plans, 2^%d rows\n",
              space.x_size(), space.y_size(), plans.size(), grid.row_bits);

  // The full-scale database is only needed when *this* process computes
  // cells (--serial, or forked workers sharing its memory). Exec-mode
  // workers build their own; paying minutes of paper-scale table+index
  // construction in an idle coordinator would be pure waste.
  std::unique_ptr<StudyEnvironment> env;
  if (serial || use_fork) env = MakeGridEnvironment(grid);

  auto start = std::chrono::steady_clock::now();
  if (serial) {
    SweepOptions opts;
    opts.num_threads = 1;
    opts.verbose = verbose;
    auto map = SweepStudyPlans(env->ctx(), env->executor(), plans, space,
                               opts);
    if (!map.ok()) {
      std::fprintf(stderr, "sweep_shard: %s\n",
                   map.status().ToString().c_str());
      return 1;
    }
    Status s = WriteMergedArtifacts(out_dir, space, map.value());
    if (!s.ok()) {
      std::fprintf(stderr, "sweep_shard: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("serial sweep: cells=%zu wall=%.2fs -> %s/merged.rmt\n",
                plans.size() * space.num_points(), WallSecondsSince(start),
                out_dir.c_str());
    return 0;
  }

  ShardedSweepOptions opts;
  opts.tile_dir = out_dir;
  opts.num_workers = static_cast<unsigned>(workers < 0 ? 0 : workers);
  opts.num_tiles = tiles <= 0 ? 0 : static_cast<size_t>(tiles);
  opts.threads_per_worker =
      static_cast<unsigned>(threads_per_worker < 1 ? 1 : threads_per_worker);
  opts.resume = resume;
  opts.verbose = verbose;
  opts.cost_model = cost_model.value();
  if (!use_fork) {
    // RunShardedSweep itself appends --tiles/--tile/--rect/--out, so the
    // resolved partition is always the coordinator's own.
    opts.worker_command = {worker_path};
    for (std::string& flag : GridArgs(grid)) {
      opts.worker_command.push_back(std::move(flag));
    }
    opts.worker_command.push_back(
        "--threads=" + std::to_string(opts.threads_per_worker));
  }

  // Exec mode touches no cells in this process: a minimal simulated
  // machine satisfies the coordinator's RunContext plumbing without
  // building the study database.
  VirtualClock stub_clock;
  SimDevice stub_device(DiskParameters{}, &stub_clock);
  LruBufferPool stub_pool(&stub_device, 16);
  RunContext stub_ctx;
  stub_ctx.clock = &stub_clock;
  stub_ctx.device = &stub_device;
  stub_ctx.pool = &stub_pool;
  Executor stub_executor{StudyDb{}};
  RunContext* ctx = env ? env->ctx() : &stub_ctx;
  const Executor& executor = env ? env->executor() : stub_executor;

  ShardedSweepStats stats;
  auto map = RunShardedSweep(ctx, executor, plans, space, opts, &stats);
  if (!map.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n", map.status().ToString().c_str());
    return 1;
  }
  Status s = WriteMergedArtifacts(out_dir, space, map.value());
  if (!s.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "sharded sweep: tiles=%zu reused=%zu computed=%zu workers=%u "
      "mode=%s cost-model=%s balance=%.2f wall=%.2fs -> %s/merged.rmt\n",
      stats.tiles_total, stats.tiles_reused, stats.tiles_computed,
      stats.workers_spawned, use_fork ? "fork" : "exec",
      CostModelKindName(opts.cost_model), stats.busy_balance_ratio(),
      WallSecondsSince(start), out_dir.c_str());
  return 0;
}
