// Coordinator for sharded sweeps: partitions the study grid into tiles,
// spawns `sweep_worker` subprocesses (fork/exec) to compute the missing
// ones, and merges the checkpointed tile files into one map per study
// layer — bit-identical to a single-process sweep of the same grid.
// Rerunning against the same --out-dir resumes: tiles already valid on
// disk are skipped, so a killed paper-scale sweep restarts where it left
// off instead of from zero.
//
// Usage:
//   sweep_shard [--row-bits=16] [--min-log2=-8] [--steps-per-octave=1]
//               [--plans=all|smoke] [--workers=N] [--tiles=T]
//               [--threads-per-worker=1] [--out-dir=shard_out]
//               [--cost-model=uniform|analytic|measured]
//               [--study=plain|warmcold] [--warmup=SPEC]
//               [--worker=PATH]   # sweep_worker binary (default: next to me)
//               [--fork]          # forked in-process workers, no exec
//               [--serial]        # single-process reference sweep
//               [--no-split]      # disable straggler-tile splitting
//               [--no-resume] [--verbose]
//               [--cache-dir=DIR] [--progressive=K]
//               [--trace=FILE] [--telemetry=FILE]
//
// --trace writes a Chrome-trace-event JSON (load in Perfetto or
// chrome://tracing) of the whole run — coordinator phases, per-tile
// dispatch spans, and the workers' own spans merged onto one time axis.
// --telemetry writes counter/histogram JSON (pretty-print with `map_cat
// --telemetry`). REPRO_TRACE / REPRO_TELEMETRY supply the paths when the
// flags are absent. Observability is sidecar-only: the merged maps are
// byte-identical with and without it, and CI enforces that with `cmp`.
//
// Writes DIR/tile_NNNN.rmt checkpoints plus the merged artifacts:
// DIR/merged.{rmt,csv} for the plain study, DIR/merged_<layer>.{rmt,csv}
// (cold/warm/delta) for --study=warmcold — each a single-layer full-grid
// tile, so `cmp` against a --serial reference run checks bit-identity per
// layer. The REPRO_SHARDS / REPRO_COST_MODEL / REPRO_STUDY env knobs
// supply --workers / --cost-model / --study when the flags are absent.
// --warmup (WarmupPolicy::FromSpec grammar, e.g. resident:0.5) is the warm
// layer's policy for warmcold and the measurement policy for plain.
// --cost-model=measured reschedules from the wall times stamped into the
// tile files of a previous run against the same --out-dir (combine with
// --no-resume: moving tile boundaries invalidates old checkpoints anyway).
//
// --cache-dir attaches the content-addressed cell-result cache
// (DIR/cells.rmc, see core/cell_cache.h): already-measured cells are
// reused instead of re-measured — across runs, out-dirs, tile layouts,
// and refinement strides alike — and the merged results are published
// back and flushed after the run. Exec workers are handed the same
// --cache-dir to consult read-only; the coordinator is the only flusher.
// --progressive=K sweeps coarse-to-fine: the stride-K lattice first
// (written as DIR/snapshot_stride_K*.rmt the moment it merges, with
// coarse cells nearest-neighbor-filled to the full grid), then stride
// K/2 reusing every already-measured cell, and so on to the full grid —
// whose merged artifacts are byte-identical to a direct sweep's. The
// REPRO_CACHE / REPRO_PROGRESSIVE env knobs supply the values when the
// flags are absent. Neither applies to --serial, which stays the
// uncached reference every other mode is byte-diffed against.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cell_cache.h"
#include "core/sharded_sweep.h"
#include "core/sweep_telemetry.h"
#include "shard_cli.h"
#include "viz/csv_export.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

std::string DefaultWorkerPath(const char* argv0) {
  std::string self = argv0;
  size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "sweep_worker";
  return self.substr(0, slash + 1) + "sweep_worker";
}

/// Per-layer merged artifacts: each layer is persisted as a single-layer
/// tile covering the whole grid, so the same reader (and the same
/// byte-for-byte comparison) serves tiles, plain maps, and every layer of
/// a multi-layer study alike. The plain study keeps its classic
/// merged.{rmt,csv} names.
Status WriteMergedArtifacts(const std::string& dir, StudyKind study,
                            const std::vector<RobustnessMap>& layers) {
  RM_RETURN_IF_ERROR(EnsureDirectory(dir));
  const std::vector<std::string> names = StudyLayerNames(study);
  for (size_t li = 0; li < layers.size(); ++li) {
    const std::string base =
        dir + "/merged" + (names.empty() ? "" : "_" + names[li]);
    RM_RETURN_IF_ERROR(WriteMapRmt(base + ".rmt", layers[li]));
    RM_RETURN_IF_ERROR(WriteMapCsvFile(base + ".csv", layers[li]));
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  ShardGrid grid;
  int workers = 0;
  int tiles = 0;
  int threads_per_worker = 1;
  int progressive = EnvInt("REPRO_PROGRESSIVE", 0, 0, 1 << 20);
  bool use_fork = false;
  bool serial = false;
  bool resume = true;
  bool split_stragglers = true;
  bool verbose = EnvFlag("REPRO_VERBOSE");
  std::string out_dir = "shard_out";
  std::string worker_path = DefaultWorkerPath(argv[0]);
  std::string cost_model_name =
      CostModelKindName(EnvCostModel(CostModelKind::kAnalytic));
  std::string study_name = StudyKindName(EnvStudy(StudyKind::kPlainMap));
  std::string warmup_spec = "cold";
  std::string cache_dir = EnvString("REPRO_CACHE");
  std::string trace_path = EnvString("REPRO_TRACE");
  std::string telemetry_path = EnvString("REPRO_TELEMETRY");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseGridFlag(arg, &grid) || ParseIntFlag(arg, "workers", &workers) ||
        ParseIntFlag(arg, "tiles", &tiles) ||
        ParseIntFlag(arg, "threads-per-worker", &threads_per_worker) ||
        ParseIntFlag(arg, "progressive", &progressive) ||
        ParseFlag(arg, "out-dir", &out_dir) ||
        ParseFlag(arg, "cache-dir", &cache_dir) ||
        ParseFlag(arg, "cost-model", &cost_model_name) ||
        ParseFlag(arg, "study", &study_name) ||
        ParseFlag(arg, "warmup", &warmup_spec) ||
        ParseFlag(arg, "worker", &worker_path) ||
        ParseFlag(arg, "trace", &trace_path) ||
        ParseFlag(arg, "telemetry", &telemetry_path)) {
      continue;
    }
    if (arg == "--fork") {
      use_fork = true;
    } else if (arg == "--serial") {
      serial = true;
    } else if (arg == "--no-resume") {
      resume = false;
    } else if (arg == "--no-split") {
      split_stragglers = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "sweep_shard: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (workers == 0) workers = EnvInt("REPRO_SHARDS", 0, 0, 256);
  auto cost_model = CostModelKindFromString(cost_model_name);
  if (!cost_model.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n",
                 cost_model.status().message().c_str());
    return 2;
  }
  auto study = StudyKindFromString(study_name);
  if (!study.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n",
                 study.status().message().c_str());
    return 2;
  }
  auto warmup = WarmupPolicy::FromSpec(warmup_spec);
  if (!warmup.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n",
                 warmup.status().message().c_str());
    return 2;
  }
  if (serial && (!cache_dir.empty() || progressive > 1)) {
    std::fprintf(stderr,
                 "sweep_shard: --serial is the uncached reference sweep; "
                 "--cache-dir / --progressive apply to the sharded run\n");
    return 2;
  }
  // A warm-cold study with a cold warm layer is two identical sweeps and
  // an all-zero delta — a spelled-out default beats a silent no-op study.
  if (study.value() == StudyKind::kWarmColdDelta && warmup.value().is_cold()) {
    warmup = WarmupPolicy::FractionResident(0.5);
    std::fprintf(stderr,
                 "sweep_shard: --study=warmcold without --warmup; using "
                 "%s\n",
                 warmup.value().label().c_str());
  }

  std::vector<PlanKind> plans = GridPlans(grid);
  if (plans.empty()) {
    std::fprintf(stderr, "sweep_shard: unknown plan set %s\n",
                 grid.plan_set.c_str());
    return 2;
  }
  ParameterSpace space = MakeGridSpace(grid);
  std::printf("sweep_shard: %zux%zu grid, %zu plans, 2^%d rows, %s study\n",
              space.x_size(), space.y_size(), plans.size(), grid.row_bits,
              StudyKindName(study.value()));

  // The full-scale database is only needed when *this* process computes
  // cells (--serial, or forked workers sharing its memory). Exec-mode
  // workers build their own; paying minutes of paper-scale table+index
  // construction in an idle coordinator would be pure waste. A persistent
  // cache forces the build even in exec mode: cache keys fingerprint the
  // real environment, and keys minted from the stub context below would
  // collide across grids that only differ in what the stub omits.
  std::unique_ptr<StudyEnvironment> env;
  if (serial || use_fork || !cache_dir.empty()) {
    env = MakeGridEnvironment(grid);
  }

  // Observability is opt-in and sidecar-only: nothing below may alter a
  // map byte (CI byte-diffs a traced run against an untraced one).
  if (!trace_path.empty()) Tracer::Get().Enable();
  if (!telemetry_path.empty()) SweepTelemetry::Get().Enable();
  const auto write_observability = [&]() {
    if (!trace_path.empty()) {
      Status s = Tracer::Get().WriteFile(trace_path);
      if (s.ok()) {
        std::printf("trace -> %s (%zu events)\n", trace_path.c_str(),
                    Tracer::Get().event_count());
      } else {
        std::fprintf(stderr, "sweep_shard: %s\n", s.ToString().c_str());
      }
    }
    if (!telemetry_path.empty()) {
      Status s = SweepTelemetry::Get().WriteFile(telemetry_path);
      if (s.ok()) {
        std::printf("telemetry -> %s\n", telemetry_path.c_str());
      } else {
        std::fprintf(stderr, "sweep_shard: %s\n", s.ToString().c_str());
      }
    }
  };

  WallTimer timer;
  if (serial) {
    // The reference run the CI byte-diffs sharded merges against: the
    // plain study through the serial legacy path, the warm-cold study
    // through `RunWarmColdSweep` itself — the acceptance bar for the
    // sharded backend is bit-identity to exactly these.
    SweepOptions opts;
    opts.num_threads = 1;
    opts.verbose = verbose;
    std::vector<RobustnessMap> layers;
    if (study.value() == StudyKind::kWarmColdDelta) {
      auto maps = RunWarmColdSweep(env->ctx(), env->executor(), plans, space,
                                   warmup.value(), opts);
      if (!maps.ok()) {
        std::fprintf(stderr, "sweep_shard: %s\n",
                     maps.status().ToString().c_str());
        return 1;
      }
      layers.push_back(std::move(maps.value().cold));
      layers.push_back(std::move(maps.value().warm));
      layers.push_back(std::move(maps.value().delta));
    } else {
      env->ctx()->warmup = warmup.value();
      auto map = SweepStudyPlans(env->ctx(), env->executor(), plans, space,
                                 opts);
      if (!map.ok()) {
        std::fprintf(stderr, "sweep_shard: %s\n",
                     map.status().ToString().c_str());
        return 1;
      }
      layers.push_back(std::move(map).value());
    }
    Status s = WriteMergedArtifacts(out_dir, study.value(), layers);
    if (!s.ok()) {
      std::fprintf(stderr, "sweep_shard: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("serial sweep: cells=%zu layers=%zu wall=%.2fs -> "
                "%s/merged*.rmt\n",
                plans.size() * space.num_points(), layers.size(),
                timer.Seconds(), out_dir.c_str());
    write_observability();
    return 0;
  }

  SweepRequest req;
  req.plans = plans;
  req.space = space;
  req.study = study.value();
  req.backend = BackendKind::kShardedProcess;
  req.warm_policy = warmup.value();
  req.sharded.tile_dir = out_dir;
  req.sharded.num_workers = static_cast<unsigned>(workers < 0 ? 0 : workers);
  req.sharded.num_tiles = tiles <= 0 ? 0 : static_cast<size_t>(tiles);
  req.sharded.threads_per_worker =
      static_cast<unsigned>(threads_per_worker < 1 ? 1 : threads_per_worker);
  req.sharded.resume = resume;
  req.sharded.verbose = verbose;
  req.sharded.cost_model = cost_model.value();
  req.sharded.split_stragglers = split_stragglers;

  // The cache outlives the request: the engine borrows it, main flushes
  // it after the merged artifacts are safely on disk.
  CellResultCache cache;
  if (!cache_dir.empty()) {
    cache.Open(cache_dir);
    req.cell_cache = &cache;
    std::printf("cell cache: %s (%zu entries)\n", cache.path().c_str(),
                cache.size());
  }
  if (progressive > 1) {
    req.progressive.initial_stride = static_cast<size_t>(progressive);
    if (!use_fork && cache_dir.empty()) {
      // Without a cache file, exec workers cannot see the coarser levels'
      // results, so partially-cached tiles are re-measured whole. The
      // maps stay byte-identical either way; only exactly-once goes.
      std::fprintf(stderr,
                   "sweep_shard: note: --progressive without --cache-dir "
                   "makes exec workers re-measure cells the coarse levels "
                   "already covered; add --cache-dir (or --fork) for "
                   "exactly-once measurement\n");
    }
    // layer_names by value: this block's scope ends long before the
    // engine fires the callback.
    const std::vector<std::string> layer_names = StudyLayerNames(study.value());
    req.progressive.on_snapshot = [&, layer_names](
                                      size_t stride,
                                      const std::vector<RobustnessMap>&
                                          layers) {
      for (size_t li = 0; li < layers.size(); ++li) {
        const std::string path =
            out_dir + "/snapshot_stride_" + std::to_string(stride) +
            (layer_names.empty() ? "" : "_" + layer_names[li]) + ".rmt";
        if (Status ws = WriteMapRmt(path, layers[li]); !ws.ok()) {
          WarnArtifact(ws, path);  // a lost snapshot never fails the sweep
        }
      }
      std::printf("progressive: stride=%zu snapshot after %.2fs -> "
                  "%s/snapshot_stride_%zu*.rmt\n",
                  stride, timer.Seconds(), out_dir.c_str(), stride);
      std::fflush(stdout);
    };
  }

  if (!use_fork) {
    // The engine itself appends --tiles/--tile/--rect/--study/--warmup/
    // --out, so the resolved partition and study are always the
    // coordinator's own.
    req.sharded.worker_command = {worker_path};
    for (std::string& flag : GridArgs(grid)) {
      req.sharded.worker_command.push_back(std::move(flag));
    }
    req.sharded.worker_command.push_back(
        "--threads=" + std::to_string(req.sharded.threads_per_worker));
  }

  // Exec mode touches no cells in this process: a minimal simulated
  // machine satisfies the coordinator's RunContext plumbing without
  // building the study database.
  VirtualClock stub_clock;
  SimDevice stub_device(DiskParameters{}, &stub_clock);
  LruBufferPool stub_pool(&stub_device, 16);
  RunContext stub_ctx;
  stub_ctx.clock = &stub_clock;
  stub_ctx.device = &stub_device;
  stub_ctx.pool = &stub_pool;
  Executor stub_executor{StudyDb{}};
  RunContext* ctx = env ? env->ctx() : &stub_ctx;
  const Executor& executor = env ? env->executor() : stub_executor;
  // A plain study measured warm: the policy rides on the context (and the
  // engine forwards it to exec workers as --warmup).
  if (study.value() == StudyKind::kPlainMap) ctx->warmup = warmup.value();

  auto outcome = SweepEngine::Run(ctx, executor, req);
  if (!outcome.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const ShardedSweepStats& stats = outcome.value().sharded_stats;
  Status s = WriteMergedArtifacts(out_dir, study.value(),
                                  outcome.value().layers);
  if (!s.ok()) {
    std::fprintf(stderr, "sweep_shard: %s\n", s.ToString().c_str());
    return 1;
  }
  if (req.cell_cache != nullptr) {
    // Flushed after the merged artifacts: a failed flush costs the next
    // run some reuse, never this run's maps.
    if (Status cs = cache.WriteCellCacheFile(); cs.ok()) {
      std::printf("cell cache: %zu entries -> %s\n", cache.size(),
                  cache.path().c_str());
    } else {
      std::fprintf(stderr, "sweep_shard: cell cache flush: %s\n",
                   cs.ToString().c_str());
    }
  }
  std::printf(
      "sharded sweep: tiles=%zu reused=%zu computed=%zu split=%zu workers=%u "
      "mode=%s study=%s cost-model=%s balance=%.2f wall=%.2fs -> "
      "%s/merged*.rmt\n",
      stats.tiles_total, stats.tiles_reused, stats.tiles_computed,
      stats.tiles_split, stats.workers_spawned, use_fork ? "fork" : "exec",
      StudyKindName(study.value()), CostModelKindName(req.sharded.cost_model),
      stats.busy_balance_ratio(), timer.Seconds(), out_dir.c_str());
  write_observability();
  return 0;
}
