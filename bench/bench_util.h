#ifndef ROBUSTMAP_BENCH_BENCH_UTIL_H_
#define ROBUSTMAP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/robustness_map.h"
#include "core/sweep.h"
#include "core/sweep_cost.h"
#include "core/sweep_engine.h"
#include "workload/dataset.h"

namespace robustmap::bench {

/// Integer env knob with range validation: unset, non-numeric, or
/// out-of-range values fall back to `def`. The single front door for every
/// REPRO_* integer — per-bench getenv/atoi calls drifted in what they
/// accepted.
int EnvInt(const char* name, int def, int lo, int hi);

/// Boolean env knob: set and starting with '1'.
bool EnvFlag(const char* name);

/// String env knob: "" when unset or empty.
std::string EnvString(const char* name);

/// REPRO_COST_MODEL resolved through `CostModelKindFromString`, with the
/// unparseable-value warning printed once here — the one resolver shared
/// by `ResolveScale` and the `sweep_shard` flag default (the two used to
/// parse the variable independently).
CostModelKind EnvCostModel(CostModelKind def);

/// REPRO_STUDY resolved through `StudyKindFromString`, same contract.
StudyKind EnvStudy(StudyKind def);

/// Scale knobs shared by all figure benches.
///
///   REPRO_ROW_BITS  — override log2(row count) (default per bench; 26
///                     approximates the paper's 60M-row lineitem).
///   REPRO_FAST=1    — shrink to a quick smoke configuration.
///   REPRO_THREADS   — sweep worker threads (default 0 = one per hardware
///                     thread; maps are bit-identical at any setting).
///   REPRO_SHARDS    — worker *processes* for sharded sweeps (default 0 =
///                     driver-specific; maps are bit-identical at any
///                     setting).
///   REPRO_COST_MODEL — sharded-sweep scheduling model: "uniform",
///                     "analytic" (default), or "measured" (reschedule
///                     from per-tile wall times found in the tile
///                     directory); maps are bit-identical at any setting.
///   REPRO_STUDY     — sweep study for study-agnostic drivers
///                     (`sweep_shard`): "plain" (default) or "warmcold"
///                     (cold/warm/delta layers per tile).
///   REPRO_VERBOSE=1 — per-plan / percent sweep progress on stderr.
///   REPRO_TRACE     — write a Chrome-trace-event JSON of the run to this
///                     path (drivers with a --trace flag also honor that;
///                     the flag wins). Sidecar-only: never changes a map.
///   REPRO_TELEMETRY — write counter/histogram telemetry JSON to this
///                     path; same contract as REPRO_TRACE.
struct BenchScale {
  int row_bits;
  int value_bits;
  int grid_min_log2;  ///< selectivity grid lower bound (e.g. -16)
  unsigned num_threads = 0;
  unsigned num_shards = 0;
  CostModelKind cost_model = CostModelKind::kAnalytic;
  bool verbose = false;
};

/// Resolves the scale for a bench with the given defaults.
BenchScale ResolveScale(int default_row_bits, int default_min_log2 = -16);

/// Creates the standard study environment at the given scale.
std::unique_ptr<StudyEnvironment> MakeEnvironment(const BenchScale& scale);

/// Sweep options for a bench at this scale (worker threads from
/// REPRO_THREADS via ResolveScale).
SweepOptions SweepOpts(const BenchScale& scale);

/// A plain-map engine request at this scale: the threaded backend with
/// the scale's thread/verbosity knobs, and the sharded backend knobs
/// (shards, cost model) prefilled for callers that flip `req.backend`.
SweepRequest StudyRequest(const BenchScale& scale,
                          std::vector<PlanKind> plans, ParameterSpace space);

/// The standard figure-bench sweep: a plain-map study at this scale run
/// through `SweepEngine::Run` on the threaded backend. Dies on error, as
/// the self-checking bench drivers want.
RobustnessMap RunStudyMap(StudyEnvironment* env, std::vector<PlanKind> plans,
                          ParameterSpace space, const BenchScale& scale);

/// Output directory for bench artifacts (created on demand).
std::string OutDir();

/// Logs a failed best-effort artifact write to stderr, naming the path.
/// Benches keep running — a missing plot is not a failed study — but the
/// failure is visible instead of swallowed by a `(void)` cast.
void WarnArtifact(const Status& s, const std::string& path);

/// Serializes a map as a full-grid single-layer tile file — the canonical
/// binary artifact (`map_cat` derives CSV/ASCII/PPM from it on demand).
/// Written with wall_seconds 0, so equal maps produce equal bytes.
Status WriteMapRmt(const std::string& path, const RobustnessMap& map);

/// The multi-layer form: cold/warm/delta as one three-layer tile file.
Status WriteWarmColdRmt(const std::string& path, const WarmColdMaps& maps);

/// Writes the artifact set for a map: the canonical `.rmt`, a gnuplot
/// `.plt` whose data is piped from that `.rmt` via `map_cat --dat`, and
/// (2-D) per-plan PPMs. No ready-made CSV/dat copies — derive them on
/// demand with `map_cat --csv` / `--dat FILE.rmt`.
void ExportMap(const std::string& figure_name, const RobustnessMap& map,
               bool relative = false);

/// Writes the full artifact set of a paired cold/warm study:
/// `<figure>_cold.*` and `<figure>_warm.*` via ExportMap, the three-layer
/// `_warmcold.rmt`, per-plan delta PPMs on the diverging scale, and the
/// diverging-legend strip.
void ExportWarmColdMaps(const std::string& figure_name,
                        const WarmColdMaps& maps);

/// Prints a 1-D map as a fixed-width table of seconds (plans as columns).
void PrintCurveTable(const RobustnessMap& map);

/// Prints the standard bench header.
void PrintHeader(const std::string& figure, const std::string& claim,
                 const BenchScale& scale);

/// Prints landmark analysis for each plan of a 1-D map.
void PrintCurveLandmarks(const RobustnessMap& map);

/// Finds the x where curves `a` and `b` cross (linear interpolation in
/// log-log space); returns -1 if they never cross.
double CrossoverX(const std::vector<double>& xs, const std::vector<double>& a,
                  const std::vector<double>& b);

/// The timing idiom every self-timing bench driver shares: a stopwatch
/// started at construction, read with `Seconds()`. Backed by
/// `MonotonicNowNs` — the tree's one sanctioned wall-clock entry point —
/// so the determinism lint can reject any other clock use outside the
/// trace module.
class WallTimer {
 public:
  WallTimer() : start_ns_(MonotonicNowNs()) {}
  double Seconds() const {
    return static_cast<double>(MonotonicNowNs() - start_ns_) * 1e-9;
  }

 private:
  int64_t start_ns_;
};

/// True iff the maps agree on shape, plan labels, and *every* field of
/// every cell — seconds, row counts, each I/O counter, byte totals, and
/// labels. The determinism contract the self-checking benches assert; one
/// definition so no bench's notion of "bit-identical" can quietly weaken.
bool MapsBitIdentical(const RobustnessMap& a, const RobustnessMap& b);

}  // namespace robustmap::bench

#endif  // ROBUSTMAP_BENCH_BENCH_UTIL_H_
