// Figures 3 and 6: the color scales themselves.
//
// Figure 3 maps absolute execution time to colors "from green to red and
// finally black ... each color difference indicating an order of magnitude";
// Figure 6 does the same for cost factors relative to the best plan.

#include <cstdio>

#include "bench_util.h"
#include "core/color_scale.h"
#include "viz/legend.h"
#include "viz/ppm_writer.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  std::printf("Figure 3 / Figure 6: color codes for robustness maps\n\n");

  ColorScale absolute = ColorScale::AbsoluteSeconds();
  ColorScale relative = ColorScale::RelativeFactor();
  ColorScale counts = ColorScale::Counts(8);

  std::printf("%s\n", RenderLegend(absolute).c_str());
  std::printf("%s\n", RenderLegend(relative).c_str());
  std::printf("%s\n", RenderLegend(counts).c_str());

  std::string dir = OutDir();
  WarnArtifact(WriteLegendPpm(dir + "/fig03_absolute_legend.ppm", absolute),
               dir + "/fig03_absolute_legend.ppm");
  WarnArtifact(WriteLegendPpm(dir + "/fig06_relative_legend.ppm", relative),
               dir + "/fig06_relative_legend.ppm");
  std::printf("[artifacts] %s/fig03_absolute_legend.ppm, "
              "%s/fig06_relative_legend.ppm written\n",
              dir.c_str(), dir.c_str());

  // Sanity rows: representative values and their buckets.
  double probes[] = {0.0005, 0.005, 0.05, 0.5, 5, 50, 500, 5000};
  std::printf("\nbucket check (absolute): ");
  for (double v : probes) std::printf("%d ", absolute.BucketOf(v));
  double factors[] = {1, 3, 30, 300, 3000, 30000, 300000};
  std::printf("\nbucket check (relative): ");
  for (double v : factors) std::printf("%d ", relative.BucketOf(v));
  std::printf("\n");
  return 0;
}
