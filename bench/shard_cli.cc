#include "shard_cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace robustmap::bench {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseIntFlag(const std::string& arg, const std::string& name,
                  int* value) {
  std::string raw;
  if (!ParseFlag(arg, name, &raw)) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    // An unparseable value must not silently become some other number —
    // for --tile that would compute the wrong tile under the right name.
    return false;
  }
  *value = static_cast<int>(v);
  return true;
}

bool ParseGridFlag(const std::string& arg, ShardGrid* grid) {
  return ParseIntFlag(arg, "row-bits", &grid->row_bits) ||
         ParseIntFlag(arg, "min-log2", &grid->min_log2) ||
         ParseIntFlag(arg, "steps-per-octave", &grid->steps_per_octave) ||
         ParseFlag(arg, "plans", &grid->plan_set);
}

std::vector<std::string> GridArgs(const ShardGrid& grid) {
  return {"--row-bits=" + std::to_string(grid.row_bits),
          "--min-log2=" + std::to_string(grid.min_log2),
          "--steps-per-octave=" + std::to_string(grid.steps_per_octave),
          "--plans=" + grid.plan_set};
}

int ValueBitsFor(int row_bits) { return std::min(16, row_bits - 2); }

ParameterSpace MakeGridSpace(const ShardGrid& grid) {
  // Same clamp as ResolveScale: below 2^-value_bits every predicate
  // degenerates to a single domain value, so finer grid rows would be
  // duplicate measurements mislabeled as distinct selectivities.
  const int min_log2 = std::max(grid.min_log2, -ValueBitsFor(grid.row_bits));
  return ParameterSpace::TwoD(
      Axis::SelectivityFine("selectivity(a)", min_log2, 0,
                            grid.steps_per_octave),
      Axis::SelectivityFine("selectivity(b)", min_log2, 0,
                            grid.steps_per_octave));
}

std::vector<PlanKind> GridPlans(const ShardGrid& grid) {
  if (grid.plan_set == "all") return AllStudyPlans();
  if (grid.plan_set == "smoke") {
    return {PlanKind::kTableScan, PlanKind::kIndexAImproved,
            PlanKind::kMergeJoinAB, PlanKind::kMdamAB};
  }
  return {};
}

std::unique_ptr<StudyEnvironment> MakeGridEnvironment(const ShardGrid& grid) {
  StudyOptions opts;
  opts.row_bits = grid.row_bits;
  opts.value_bits = ValueBitsFor(grid.row_bits);
  return StudyEnvironment::Create(opts).ValueOrDie();
}

}  // namespace robustmap::bench
