// Figure 7: the single-index plan of Figure 4, now shown relative to the
// best of System A's seven plans at each point.
//
// Paper findings this bench reproduces: the plan is optimal only in a small
// part of the space; that region is NOT contiguous ("which is rather
// surprising"); and although the absolute surface is smooth, the relative
// surface is rough. The worst factor reported by the paper is 101,000 at
// 60M rows — the factor grows with scale (see EXPERIMENTS.md).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "core/optimality.h"
#include "core/regions.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "engine/system.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Figure 7: single-index plan relative to best of 7 (System A)",
              "optimal only in a small, discontinuous region; relative "
              "surface rough although the absolute surface was smooth; huge "
              "worst-case factor",
              scale);
  auto env = MakeEnvironment(scale);

  SystemConfig sys_a = SystemConfig::SystemA();
  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      RunStudyMap(env.get(), sys_a.plans, space, scale);
  RelativeMap rel = ComputeRelative(map);
  size_t target = map.PlanIndexOf("A.idx_a.improved").ValueOrDie();

  ColorScale cs = ColorScale::RelativeFactor();
  HeatmapOptions hopts;
  hopts.title = "\nFigure 7: idx(a)+fetch plan, cost factor vs. best of 7";
  std::printf("%s",
              RenderHeatmap(space, rel.quotient[target], cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  // The paper's 0.1 s tolerance, scaled to this run's data volume.
  double abs_tol = 0.1 * std::exp2(static_cast<double>(scale.row_bits) - 26);
  OptimalityMap opt = ComputeOptimality(map, ToleranceSpec{abs_tol, 1.0});
  RegionStats regions = AnalyzeRegions(space, OptimalRegionOf(opt, target));
  std::printf("\noptimality region of the plan (tolerance %.3g s):\n",
              abs_tol);
  std::printf("  cells: %zu / %zu, connected components: %d -> %s\n",
              regions.member_cells, space.num_points(), regions.num_regions,
              regions.is_contiguous()
                  ? "contiguous"
                  : "NOT contiguous (the paper's surprise)");
  std::printf("  worst factor vs. best plan: %.4g (paper: 101,000 at 60M "
              "rows; grows with scale)\n",
              WorstQuotient(rel, target));

  std::printf(
      "\nper-plan robustness summary (System A):\n%s",
      RenderSummaryTable(SummarizePlans(map, ToleranceSpec{abs_tol, 1.0}))
          .c_str());

  ExportMap("fig07_relative_best7", map, /*relative=*/true);
  return 0;
}
