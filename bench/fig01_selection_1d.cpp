// Figure 1: single-table single-predicate selection, 1-D selectivity sweep.
//
// Reproduces the paper's opening exhibit: table scan (flat), traditional
// index scan (linear, catastrophic at high selectivity), improved index scan
// (low latency at small results, competitive bandwidth at moderate results,
// moderately worse than the table scan at 100%).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/20);
  PrintHeader("Figure 1: single-predicate selection plans (1-D)",
              "break-even traditional-IS/table-scan ~2^-11 of rows; improved "
              "IS competitive to ~2^-4; ~2.5x worse at 100%; improved IS "
              "steepens at very large results",
              scale);
  auto env = MakeEnvironment(scale);

  std::vector<PlanKind> plans = {PlanKind::kTableScan, PlanKind::kIndexANaive,
                                 PlanKind::kIndexAImproved};
  ParameterSpace space = ParameterSpace::OneD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0));
  auto map = RunStudyMap(env.get(), plans, space, scale);

  PrintCurveTable(map);

  std::vector<ChartSeries> series;
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    series.push_back({map.plan_label(pl), map.SecondsOfPlan(pl)});
  }
  ChartOptions copts;
  copts.title = "\nFigure 1 (log-log): execution time vs. selectivity";
  copts.x_label = "selectivity of predicate on a";
  std::printf("%s", RenderChart(space.x().values, series, copts).c_str());

  PrintCurveLandmarks(map);

  const auto& xs = space.x().values;
  auto ts = map.SecondsOfPlan(0);
  auto naive = map.SecondsOfPlan(1);
  auto improved = map.SecondsOfPlan(2);
  double x_naive = CrossoverX(xs, naive, ts);
  double x_improved = CrossoverX(xs, improved, ts);
  double ratio_full = improved.back() / ts.back();
  double naive_full = naive.back() / ts.back();

  std::printf("\nFigure 1 landmarks (paper expectation in parentheses):\n");
  std::printf("  traditional IS / table scan break-even: %s of rows (2^-11)\n",
              x_naive > 0 ? FormatSelectivity(x_naive).c_str() : "none");
  std::printf("  improved IS / table scan break-even:    %s of rows (2^-4)\n",
              x_improved > 0 ? FormatSelectivity(x_improved).c_str() : "none");
  std::printf("  improved IS at 100%% selectivity:        %.2fx table scan "
              "(~2.5x)\n",
              ratio_full);
  std::printf("  traditional IS at 100%% selectivity:     %.0fx table scan "
              "(orders of magnitude)\n",
              naive_full);

  ExportMap("fig01_selection_1d", map);
  return 0;
}
