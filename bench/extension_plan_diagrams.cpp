// Extension bench: the two opportunities the paper names but does not
// pursue (§3.3), plus the §3.4 "map of optimality regions":
//
//  * a plan diagram of measured best plans per point, with region-size
//    search-order heuristic;
//  * worst-performance ("danger") maps;
//  * a comparison of the three systems, each running the best plan it owns.

#include <cstdio>

#include "bench_util.h"
#include "core/plan_diagram.h"
#include "core/sweep.h"
#include "core/system_compare.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Extension: plan diagrams, danger maps, system comparison",
              "§3.3/§3.4 future work: regions of optimality per plan, "
              "particularly dangerous plans, and multi-system comparison",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      RunStudyMap(env.get(), AllStudyPlans(), space, scale);

  // --- Plan diagram (regions of optimality, §3.4) ---
  PlanDiagram diagram = ComputePlanDiagram(map, ToleranceSpec{0.0, 1.01});
  std::printf("\n%s", RenderPlanDiagram(diagram).c_str());
  std::printf("\nbranch-and-bound search order by region size (§3.4):\n  ");
  for (size_t pl : RegionSizeSearchOrder(diagram)) {
    std::printf("%s ", map.plan_label(pl).c_str());
  }
  std::printf("\n");
  int fragmented = 0;
  for (const RegionStats& r : diagram.winner_regions) {
    if (!r.is_contiguous()) ++fragmented;
  }
  std::printf("winners with non-contiguous optimality regions: %d of %zu "
              "(irregular shapes hint at implementation idiosyncrasies)\n",
              fragmented, diagram.winners.size());

  // --- Danger map (worst plan per point) ---
  WorstCaseMap worst = ComputeWorstCase(map);
  auto danger = DangerCells(worst);
  std::printf("\nmost dangerous plans (cells where the plan is the WORST "
              "choice):\n");
  for (size_t pl = 0; pl < danger.size(); ++pl) {
    if (danger[pl] == 0) continue;
    std::printf("  %-24s %zu cells\n", map.plan_label(pl).c_str(),
                danger[pl]);
  }

  // --- Cross-system comparison ---
  auto cmp = CompareSystems(map, SystemConfig::AllSystems()).ValueOrDie();
  std::printf("\neach system running the best plan it owns:\n%s",
              RenderSystemComparison(cmp).c_str());
  ColorScale cs = ColorScale::RelativeFactor();
  for (size_t s = 0; s < cmp.profiles.size(); ++s) {
    HeatmapOptions hopts;
    hopts.title = "\n" + cmp.profiles[s].name +
                  " best-own-plan cost factor vs. best of all systems";
    std::printf("%s", RenderHeatmap(space, cmp.quotient[s], cs, hopts).c_str());
  }
  std::printf("%s", RenderLegend(cs).c_str());

  ExportMap("extension_plan_diagrams", map, /*relative=*/true);
  return 0;
}
