// Figure 4: two-predicate query, single-index plan, 2-D absolute cost map.
//
// The plan scans idx(a) and applies the predicate on b only after fetching
// rows. The paper's point: the map's value "is its lack of surprise" — cost
// varies along the indexed dimension and the residual predicate has
// practically no effect.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Figure 4: two-predicate single-index selection (2-D)",
              "execution time driven by the indexed predicate's selectivity "
              "only; the residual predicate has practically no effect; the "
              "absolute surface is smooth",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      RunStudyMap(env.get(), {PlanKind::kIndexAImproved}, space, scale);

  ColorScale cs = ColorScale::AbsoluteSeconds();
  HeatmapOptions hopts;
  hopts.title = "\nFigure 4: idx(a) + fetch + residual(b), absolute time";
  std::printf(
      "%s", RenderHeatmap(space, map.SecondsOfPlan(0), cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  // Quantify "one dimension dominates": spread across b at fixed a vs.
  // spread across a at fixed b.
  auto grid = map.SecondsOfPlan(0);
  size_t n = space.x_size();
  double max_spread_b = 0, max_spread_a = 0;
  for (size_t i = 0; i < n; ++i) {
    double lo_b = 1e300, hi_b = 0, lo_a = 1e300, hi_a = 0;
    for (size_t j = 0; j < space.y_size(); ++j) {
      double va = grid[space.IndexOf(i, j)];  // fixed a, varying b
      lo_b = std::min(lo_b, va);
      hi_b = std::max(hi_b, va);
      double vb = grid[space.IndexOf(j, i)];  // fixed b, varying a
      lo_a = std::min(lo_a, vb);
      hi_a = std::max(hi_a, vb);
    }
    max_spread_b = std::max(max_spread_b, hi_b / lo_b);
    max_spread_a = std::max(max_spread_a, hi_a / lo_a);
  }
  double lo = *std::min_element(grid.begin(), grid.end());
  double hi = *std::max_element(grid.begin(), grid.end());
  std::printf("\nsurface range: %s .. %s (paper: 4 s .. 890 s at 60M rows)\n",
              FormatSeconds(lo).c_str(), FormatSeconds(hi).c_str());
  std::printf("max spread along b at fixed a: %.2fx  (expected ~1: residual "
              "predicate has no effect)\n",
              max_spread_b);
  std::printf("max spread along a at fixed b: %.2fx  (expected large: the "
              "indexed predicate drives cost)\n",
              max_spread_a);

  ExportMap("fig04_single_index_2d", map);
  return 0;
}
