// Figure 8: System B's two-column covering-index plan, relative to the best
// of all 13 plans across the three systems.
//
// System B's MVCC applies only to main-table rows, so even a covering index
// must fetch; rows are fetched in bitmap-sorted order. The paper: "this plan
// is close to optimal ... over a much larger region of the parameter space
// [than Figure 7's plan]. Moreover, its worst quotient is not as bad" — so
// "robustness might well trump performance."

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/optimality.h"
#include "core/regions.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Figure 8: System B two-column covering index + bitmap fetch",
              "near-optimal over a much larger region than Figure 7's plan; "
              "worst quotient far smaller",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      RunStudyMap(env.get(), AllStudyPlans(), space, scale);
  RelativeMap rel = ComputeRelative(map);
  size_t plan_b = map.PlanIndexOf("B.cover(a,b).bitmap").ValueOrDie();
  size_t plan_a = map.PlanIndexOf("A.idx_a.improved").ValueOrDie();

  ColorScale cs = ColorScale::RelativeFactor();
  HeatmapOptions hopts;
  hopts.title =
      "\nFigure 8: B.cover(a,b).bitmap, cost factor vs. best of 13";
  std::printf("%s",
              RenderHeatmap(space, rel.quotient[plan_b], cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  ToleranceSpec tol{0.1 * std::exp2(static_cast<double>(scale.row_bits) - 26),
                    1.0};
  OptimalityMap opt = ComputeOptimality(map, tol);
  RegionStats rb = AnalyzeRegions(space, OptimalRegionOf(opt, plan_b));
  RegionStats ra = AnalyzeRegions(space, OptimalRegionOf(opt, plan_a));
  double wq_b = WorstQuotient(rel, plan_b);
  double wq_a = WorstQuotient(rel, plan_a);
  std::printf("\ncomparison with Figure 7's plan:\n");
  std::printf("  near-optimal cells:  B.cover %zu vs. A.idx_a %zu (of %zu) -> "
              "%s\n",
              rb.member_cells, ra.member_cells, space.num_points(),
              rb.member_cells > ra.member_cells
                  ? "larger region, as the paper reports"
                  : "UNEXPECTED");
  std::printf("  worst factor:        B.cover %.4g vs. A.idx_a %.4g -> %s\n",
              wq_b, wq_a,
              wq_b < wq_a ? "smaller worst quotient, as the paper reports"
                          : "UNEXPECTED");
  std::printf("  => if run-time predicate values are unknown at compile time, "
              "the covering plan is the safer choice\n");

  ExportMap("fig08_systemB_covering", map, /*relative=*/true);
  return 0;
}
