// Ablation: join-order robustness — merge join vs. the two hash-join orders
// over the full 2-D selectivity space (paper §3.2 and [GLS94]).
//
// The merge join is symmetric: swapping the predicates swaps nothing. The
// hash join is not: building on the larger input triggers Grace
// partitioning much earlier. The quotient map hj(a,b)/hj(b,a) shows where
// the join order matters and by how much.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/landmarks.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/16, /*min_log2=*/-12);
  PrintHeader("Ablation: hash-join order asymmetry vs. merge-join symmetry",
              "merge join symmetric under s_a <-> s_b; hash join strongly "
              "order-sensitive",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map = RunStudyMap(env.get(),
                         {PlanKind::kMergeJoinAB, PlanKind::kHashJoinAB,
                          PlanKind::kHashJoinBA},
                         space, scale);

  SymmetryScore mj = ComputeSymmetry(space, map.SecondsOfPlan(0));
  SymmetryScore hj_ab = ComputeSymmetry(space, map.SecondsOfPlan(1));
  std::printf("symmetry scores (max |log2 c(i,j)/c(j,i)|):\n");
  std::printf("  mj(a,b):  %.3f -> %s\n", mj.max_abs_log2_ratio,
              mj.is_symmetric() ? "symmetric" : "NOT symmetric");
  std::printf("  hj(a,b):  %.3f -> %s\n", hj_ab.max_abs_log2_ratio,
              hj_ab.is_symmetric() ? "symmetric" : "NOT symmetric");

  // Quotient map: where does the join order matter?
  std::vector<double> quotient(space.num_points());
  auto ab = map.SecondsOfPlan(1);
  auto ba = map.SecondsOfPlan(2);
  double worst = 1;
  for (size_t pt = 0; pt < quotient.size(); ++pt) {
    quotient[pt] = ab[pt] / ba[pt];
    worst = std::max({worst, quotient[pt], 1.0 / quotient[pt]});
  }
  ColorScale cs = ColorScale::RelativeFactor();
  HeatmapOptions hopts;
  hopts.title = "\nhj(a,b) / hj(b,a) cost quotient (green = equal)";
  std::printf("%s", RenderHeatmap(space, quotient, cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());
  std::printf("\nworst penalty for picking the wrong build side: %.2fx\n",
              worst);

  ExportMap("ablation_hash_asymmetry", map);
  return 0;
}
