// Figure 9: System C's two-column index exploited with MDAM [LJBY95],
// relative to the best of all 13 plans.
//
// "The relative performance is reasonable across the entire parameter
// space" — the covering two-column index "is extremely robust but only if
// fully exploited using MDAM technology."

#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Figure 9: System C two-column index + MDAM",
              "reasonable relative performance across the ENTIRE space; the "
              "same index without MDAM (and System B's fetch-burdened "
              "variant) is much less robust",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      RunStudyMap(env.get(), AllStudyPlans(), space, scale);
  RelativeMap rel = ComputeRelative(map);
  size_t mdam = map.PlanIndexOf("C.mdam(a,b)").ValueOrDie();

  ColorScale cs = ColorScale::RelativeFactor();
  HeatmapOptions hopts;
  hopts.title = "\nFigure 9: C.mdam(a,b), cost factor vs. best of 13";
  std::printf("%s",
              RenderHeatmap(space, rel.quotient[mdam], cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  auto summaries = SummarizePlans(map, ToleranceSpec{0.1, 1.0});
  std::printf("\nall 13 plans, robustness summary (worst factor sorted "
              "last column first):\n%s",
              RenderSummaryTable(summaries).c_str());

  const auto& s = summaries[mdam];
  std::printf("\nC.mdam(a,b): worst factor %.3g, within 10x of best over "
              "%.0f%% of the space%s\n",
              s.worst_quotient, s.area_within_10x * 100,
              s.area_within_10x >= 0.99
                  ? " -> reasonable across the entire space, as the paper "
                    "reports"
                  : "");

  ExportMap("fig09_systemC_mdam", map, /*relative=*/true);
  return 0;
}
