// The benchmark the paper promises as its end goal (§4): "define a
// benchmark that focuses on robustness of query execution … identify
// weaknesses in the algorithms and their implementation, track progress
// against these weaknesses, and permit daily regression testing."
//
// This binary runs the full two-predicate study and scores the executor on
// a fixed checklist of robustness criteria derived from the paper. Each
// criterion prints PASS/FAIL with its measured value, and the process exits
// non-zero if any criterion regresses — ready for a nightly CI job.

#include <cstdio>

#include "bench_util.h"
#include "core/landmarks.h"
#include "core/metrics.h"
#include "core/optimality.h"
#include "core/plan_diagram.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

int g_failures = 0;

void Check(bool ok, const char* name, double value, const char* detail) {
  std::printf("  [%s] %-52s %10.4g   %s\n", ok ? "PASS" : "FAIL", name, value,
              detail);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Robustness benchmark (the paper's §4 end goal)",
              "a fixed scorecard of executor-robustness criteria for "
              "regression testing",
              scale);
  auto env = MakeEnvironment(scale);

  // 1-D criteria over the single-predicate study.
  ParameterSpace line = ParameterSpace::OneD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0));
  auto curves = SweepStudyPlans(env->ctx(), env->executor(),
                                {PlanKind::kTableScan, PlanKind::kIndexANaive,
                                 PlanKind::kIndexAImproved},
                                line)
                    .ValueOrDie();

  std::printf("\n1-D criteria (Figure 1 family):\n");
  for (size_t pl = 0; pl < curves.num_plans(); ++pl) {
    auto lm = AnalyzeCurve(line.x().values, curves.SecondsOfPlan(pl));
    Check(lm.monotonicity_violations.empty(),
          ("monotone cost: " + curves.plan_label(pl)).c_str(),
          static_cast<double>(lm.monotonicity_violations.size()),
          "violations (must be 0, §3.1)");
    Check(lm.discontinuities.empty(),
          ("no cost cliffs: " + curves.plan_label(pl)).c_str(),
          static_cast<double>(lm.discontinuities.size()),
          "jumps >8x per octave (must be 0, §4)");
  }
  double improved_ratio =
      curves.SecondsOfPlan(2).back() / curves.SecondsOfPlan(0).back();
  Check(improved_ratio < 4.0, "improved IS at 100% vs. table scan",
        improved_ratio, "x (paper: ~2.5x; >4x = regression)");

  // 2-D criteria over the full 13-plan study.
  ParameterSpace grid = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      SweepStudyPlans(env->ctx(), env->executor(), AllStudyPlans(), grid)
          .ValueOrDie();
  RelativeMap rel = ComputeRelative(map);

  std::printf("\n2-D criteria (Figures 4-10 family):\n");
  SymmetryScore mj = ComputeSymmetry(
      grid, map.SecondsOfPlan(map.PlanIndexOf("A.mj(a,b)").ValueOrDie()));
  Check(mj.is_symmetric(), "merge join symmetry", mj.max_abs_log2_ratio,
        "max |log2 ratio| (must be <0.33, Figure 5)");

  size_t mdam = map.PlanIndexOf("C.mdam(a,b)").ValueOrDie();
  double mdam_worst = WorstQuotient(rel, mdam);
  Check(mdam_worst < 50, "MDAM covering plan worst-case factor", mdam_worst,
        "x vs. best of 13 (Figure 9: reasonable everywhere)");

  size_t cover_b = map.PlanIndexOf("B.cover(a,b).bitmap").ValueOrDie();
  size_t single_a = map.PlanIndexOf("A.idx_a.improved").ValueOrDie();
  Check(WorstQuotient(rel, cover_b) < WorstQuotient(rel, single_a),
        "covering beats single-index worst case",
        WorstQuotient(rel, cover_b) / WorstQuotient(rel, single_a),
        "ratio of worst factors (must be <1, Figure 8)");

  OptimalityMap opt = ComputeOptimality(map, ToleranceSpec{0.0, 1.20});
  size_t multi = 0;
  for (int c : opt.counts) {
    if (c >= 2) ++multi;
  }
  double multi_frac = static_cast<double>(multi) / opt.counts.size();
  Check(multi_frac > 0.5, "points with multiple near-optimal plans",
        multi_frac * 100, "% at 20% tolerance (Figure 10)");

  PlanDiagram diagram = ComputePlanDiagram(map, ToleranceSpec{0.0, 1.01});
  double frag = 0;
  for (const RegionStats& r : diagram.winner_regions) {
    frag = std::max(frag, r.fragmentation);
  }
  Check(frag < 0.5, "optimality regions not shattered", frag,
        "max fragmentation (irregular regions = idiosyncrasies, §3.4)");

  std::printf("\n%s: %d criterion failure(s)\n",
              g_failures == 0 ? "ROBUSTNESS BENCHMARK PASSED"
                              : "ROBUSTNESS BENCHMARK FAILED",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
