// The benchmark the paper promises as its end goal (§4): "define a
// benchmark that focuses on robustness of query execution … identify
// weaknesses in the algorithms and their implementation, track progress
// against these weaknesses, and permit daily regression testing."
//
// This binary runs the full two-predicate study and scores the executor on
// a fixed checklist of robustness criteria derived from the paper. Each
// criterion prints PASS/FAIL with its measured value, and the process exits
// non-zero if any criterion regresses — ready for a nightly CI job.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/cell_cache.h"
#include "core/landmarks.h"
#include "core/sharded_sweep.h"
#include "core/sweep_telemetry.h"
#include "core/metrics.h"
#include "core/optimality.h"
#include "core/plan_diagram.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

int g_failures = 0;

void Check(bool ok, const char* name, double value, const char* detail) {
  std::printf("  [%s] %-52s %10.4g   %s\n", ok ? "PASS" : "FAIL", name, value,
              detail);
  if (!ok) ++g_failures;
}

/// One timed sharded leg for the JSON artifact: wall clock, the per-worker
/// busy-time balance ratio (slowest/mean — the makespan quality of the
/// scheduler), and the lossless-merge flag.
struct ShardLeg {
  double wall_seconds = 0;
  double balance_ratio = 1;
  double busy_total_seconds = 0;  ///< summed worker busy time
  size_t tiles = 0;
  bool bit_identical = false;
};

/// The cell-cache legs for the JSON artifact: how much the warm rerun
/// reused (all of it, if the cache works), and how early a progressive
/// sweep's first coarse snapshot landed relative to its full wall time.
struct CacheLeg {
  uint64_t cells_reused = 0;
  double hit_rate = 0;
  double warm_wall_seconds = 0;
  double first_snapshot_seconds = 0;
  double progressive_wall_seconds = 0;
};

/// Upper bound of the histogram bucket where the cumulative count crosses
/// quantile `q` — a deterministic percentile estimate on the fixed 1-2-5
/// ladder (two runs recording the same counts report the same value). The
/// top quantile returns the exact observed maximum.
double HistogramQuantile(const LatencyHistogram& h, double q) {
  if (h.count == 0) return 0;
  const std::vector<double>& bounds = LatencyHistogram::Bounds();
  const double target = q * static_cast<double>(h.count);
  uint64_t acc = 0;
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    acc += h.buckets[i];
    if (static_cast<double>(acc) >= target) {
      return i < bounds.size() ? bounds[i] : h.max_seconds;
    }
  }
  return h.max_seconds;
}

/// The top-N telemetry counters by value (name ascending on ties, so equal
/// runs order equally) — the "what did this run actually do" digest for
/// the JSON artifact and the stdout block.
std::vector<std::pair<std::string, uint64_t>> TopCounters(size_t n) {
  std::vector<std::pair<std::string, uint64_t>> top;
  for (const auto& [name, value] : SweepTelemetry::Get().Counters()) {
    top.emplace_back(name, value);
  }
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > n) top.resize(n);
  return top;
}

/// The perf-trajectory artifact consumed by CI: wall-clock cost of the full
/// 2-D study sweep — serial, thread-parallel, and process-sharded (uniform
/// tiles vs. the cost-weighted scheduler, same worker and tile count) — on
/// this machine, plus the per-phase wall breakdown and the run's loudest
/// telemetry counters.
void WriteBenchJson(
    const BenchScale& scale, size_t plans, size_t cells, unsigned threads,
    double serial_wall, double parallel_wall, bool bit_identical,
    unsigned shards, const ShardLeg& uniform, const ShardLeg& weighted,
    const CacheLeg& cached,
    const std::vector<std::pair<std::string, double>>& phase_walls) {
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  // A speedup measured with more threads than the box has (or on a
  // single-core box) says nothing about the sweep engine; flag it so the
  // perf-trajectory consumer never trends a meaningless ratio.
  const bool speedup_meaningful =
      hardware_threads >= 2 && threads <= hardware_threads;
  if (!speedup_meaningful) {
    std::fprintf(stderr,
                 "robustness_benchmark: %u sweep threads on %u hardware "
                 "thread(s) — wall-clock speedups are not meaningful on "
                 "this box\n",
                 threads, hardware_threads);
  }
  std::FILE* f = std::fopen("BENCH_robustness.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_robustness.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"robustness_sweep_2d\",\n"
               "  \"row_bits\": %d,\n"
               "  \"plans\": %zu,\n"
               "  \"cells\": %zu,\n"
               "  \"threads\": %u,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"speedup_meaningful\": %s,\n"
               "  \"serial_wall_seconds\": %.6f,\n"
               "  \"parallel_wall_seconds\": %.6f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"serial_cells_per_second\": %.3f,\n"
               "  \"parallel_cells_per_second\": %.3f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"shard_workers\": %u,\n"
               "  \"shard_tiles\": %zu,\n"
               "  \"sharded_cost_model\": \"%s\",\n"
               "  \"sharded_wall_seconds\": %.6f,\n"
               "  \"sharded_speedup\": %.3f,\n"
               "  \"sharded_balance_ratio\": %.3f,\n"
               "  \"sharded_bit_identical\": %s,\n"
               "  \"sharded_uniform_wall_seconds\": %.6f,\n"
               "  \"sharded_uniform_balance_ratio\": %.3f,\n"
               "  \"sharded_uniform_bit_identical\": %s,\n",
               scale.row_bits, plans, cells, threads, hardware_threads,
               speedup_meaningful ? "true" : "false", serial_wall,
               parallel_wall,
               parallel_wall > 0 ? serial_wall / parallel_wall : 0.0,
               serial_wall > 0 ? static_cast<double>(cells) / serial_wall
                               : 0.0,
               parallel_wall > 0 ? static_cast<double>(cells) / parallel_wall
                                 : 0.0,
               bit_identical ? "true" : "false", shards, weighted.tiles,
               CostModelKindName(scale.cost_model), weighted.wall_seconds,
               weighted.wall_seconds > 0 ? serial_wall / weighted.wall_seconds
                                         : 0.0,
               weighted.balance_ratio,
               weighted.bit_identical ? "true" : "false",
               uniform.wall_seconds, uniform.balance_ratio,
               uniform.bit_identical ? "true" : "false");
  std::fprintf(f,
               "  \"cells_reused\": %llu,\n"
               "  \"cache_hit_rate\": %.4f,\n"
               "  \"cache_warm_wall_seconds\": %.6f,\n"
               "  \"time_to_first_snapshot_seconds\": %.6f,\n"
               "  \"progressive_wall_seconds\": %.6f,\n",
               static_cast<unsigned long long>(cached.cells_reused),
               cached.hit_rate, cached.warm_wall_seconds,
               cached.first_snapshot_seconds,
               cached.progressive_wall_seconds);
  std::fprintf(f, "  \"phase_walls_seconds\": {");
  for (size_t i = 0; i < phase_walls.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %.6f", i == 0 ? "" : ",",
                 phase_walls[i].first.c_str(), phase_walls[i].second);
  }
  std::fprintf(f, "\n  },\n");
  // Per-cell wall-time spread across every sweep leg of this run, from the
  // sweep.cell_seconds telemetry histogram (p50/p95 are bucket upper
  // bounds on the fixed 1-2-5 ladder; max is exact).
  const auto histograms = SweepTelemetry::Get().Histograms();
  if (const auto it = histograms.find("sweep.cell_seconds");
      it != histograms.end() && it->second.count > 0) {
    const LatencyHistogram& h = it->second;
    std::fprintf(f,
                 "  \"cell_seconds\": {\n"
                 "    \"count\": %llu,\n"
                 "    \"p50\": %.6g,\n"
                 "    \"p95\": %.6g,\n"
                 "    \"max\": %.6g\n"
                 "  },\n",
                 static_cast<unsigned long long>(h.count),
                 HistogramQuantile(h, 0.50), HistogramQuantile(h, 0.95),
                 h.max_seconds);
  }
  const auto top = TopCounters(8);
  std::fprintf(f, "  \"top_counters\": {");
  for (size_t i = 0; i < top.size(); ++i) {
    std::fprintf(f, "%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                 top[i].first.c_str(),
                 static_cast<unsigned long long>(top[i].second));
  }
  std::fprintf(f,
               "%s  },\n"
               "  \"criterion_failures\": %d\n"
               "}\n",
               top.empty() ? "" : "\n", g_failures);
  std::fclose(f);
  std::printf("\n[artifacts] BENCH_robustness.json written (threads %.2fx on "
              "%u, processes %.2fx on %u, balance %.2f vs %.2f uniform)\n",
              parallel_wall > 0 ? serial_wall / parallel_wall : 0.0, threads,
              weighted.wall_seconds > 0
                  ? serial_wall / weighted.wall_seconds
                  : 0.0,
              shards, weighted.balance_ratio, uniform.balance_ratio);
  if (!top.empty()) {
    std::printf("[telemetry] loudest counters:\n");
    for (const auto& [name, value] : top) {
      std::printf("  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
}

}  // namespace

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Robustness benchmark (the paper's §4 end goal)",
              "a fixed scorecard of executor-robustness criteria for "
              "regression testing",
              scale);
  // Telemetry is always on here — the scorecard artifact carries the
  // top-counter digest — and REPRO_TRACE additionally records a full span
  // trace. Sidecar-only either way: the bit-identity criteria below run
  // with both sinks live, so they double as the no-perturbation check.
  SweepTelemetry::Get().Enable();
  const std::string trace_path = EnvString("REPRO_TRACE");
  const std::string telemetry_path = EnvString("REPRO_TELEMETRY");
  if (!trace_path.empty()) Tracer::Get().Enable();
  std::vector<std::pair<std::string, double>> phase_walls;
  auto env = MakeEnvironment(scale);

  // 1-D criteria over the single-predicate study.
  WallTimer curves_timer;
  ParameterSpace line = ParameterSpace::OneD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0));
  auto curves = RunStudyMap(env.get(),
                            {PlanKind::kTableScan, PlanKind::kIndexANaive,
                             PlanKind::kIndexAImproved},
                            line, scale);
  phase_walls.emplace_back("curves_1d", curves_timer.Seconds());

  std::printf("\n1-D criteria (Figure 1 family):\n");
  for (size_t pl = 0; pl < curves.num_plans(); ++pl) {
    auto lm = AnalyzeCurve(line.x().values, curves.SecondsOfPlan(pl));
    Check(lm.monotonicity_violations.empty(),
          ("monotone cost: " + curves.plan_label(pl)).c_str(),
          static_cast<double>(lm.monotonicity_violations.size()),
          "violations (must be 0, §3.1)");
    Check(lm.discontinuities.empty(),
          ("no cost cliffs: " + curves.plan_label(pl)).c_str(),
          static_cast<double>(lm.discontinuities.size()),
          "jumps >8x per octave (must be 0, §4)");
  }
  double improved_ratio =
      curves.SecondsOfPlan(2).back() / curves.SecondsOfPlan(0).back();
  Check(improved_ratio < 4.0, "improved IS at 100% vs. table scan",
        improved_ratio, "x (paper: ~2.5x; >4x = regression)");

  // 2-D criteria over the full 13-plan study.
  ParameterSpace grid = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  // The 13-plan 2-D sweep is the benchmark's dominant cost — thousands of
  // independent cells. Run it serially, then on a thread pool, timing both:
  // the parallel map must reproduce the serial map bit for bit, and the
  // wall-clock ratio is the headline number of BENCH_robustness.json.
  SweepRequest serial_req = StudyRequest(scale, AllStudyPlans(), grid);
  serial_req.backend = BackendKind::kSerial;
  WallTimer serial_timer;
  auto serial_map = std::move(SweepEngine::Run(env->ctx(), env->executor(),
                                               serial_req)
                                  .ValueOrDie()
                                  .layers.front());
  double serial_wall = serial_timer.Seconds();
  phase_walls.emplace_back("serial_2d", serial_wall);

  // An explicit REPRO_THREADS is honored as-is; only the default (0 =
  // auto) is widened to at least 8 so the speedup leg exercises a real
  // thread pool even on small machines.
  SweepRequest parallel_req = StudyRequest(scale, AllStudyPlans(), grid);
  if (parallel_req.sweep.num_threads == 0) {
    parallel_req.sweep.num_threads =
        std::max(8u, std::thread::hardware_concurrency());
  }
  SweepOptions parallel_opts = parallel_req.sweep;
  WallTimer parallel_timer;
  auto map = std::move(SweepEngine::Run(env->ctx(), env->executor(),
                                        parallel_req)
                           .ValueOrDie()
                           .layers.front());
  double parallel_wall = parallel_timer.Seconds();
  phase_walls.emplace_back("parallel_2d", parallel_wall);

  bool bit_identical = MapsBitIdentical(serial_map, map);
  std::printf("\n2-D sweep wall clock: serial %.2fs, %u threads %.2fs "
              "(%.2fx)\n",
              serial_wall, parallel_opts.num_threads, parallel_wall,
              parallel_wall > 0 ? serial_wall / parallel_wall : 0.0);

  // Third leg: the same grid sharded across worker *processes* through the
  // checkpointing coordinator (tiles + fork + merge), timed against the
  // serial sweep — twice at the same worker and tile count: once with the
  // legacy uniform tiles, once under the cost model (REPRO_COST_MODEL,
  // default analytic). The study grid is exactly the skewed case the cost
  // layer exists for: cell cost rises steeply toward sel=1, so uniform
  // tiles leave the worker holding the top band far behind its peers.
  // resume=false so the timings measure computation, never a warm
  // checkpoint directory left by an earlier run.
  const unsigned shard_workers =
      scale.num_shards != 0 ? scale.num_shards : 8;
  // In-memory cell-result cache for the reuse legs below. The weighted
  // sharded leg runs with it attached: its post-merge publishes fill the
  // cache as a side effect of work the leg does anyway, so the warm
  // rerun's reuse is measured without paying for an extra cold sweep.
  CellResultCache cell_cache;
  auto run_shard_leg = [&](CostModelKind model, const std::string& dir,
                           CellResultCache* cache) -> ShardLeg {
    SweepRequest req = StudyRequest(scale, AllStudyPlans(), grid);
    req.backend = BackendKind::kShardedProcess;
    req.sharded.tile_dir = OutDir() + "/" + dir;
    req.sharded.num_workers = shard_workers;
    req.sharded.resume = false;
    req.sharded.cost_model = model;
    req.cell_cache = cache;
    WallTimer timer;
    auto out = SweepEngine::Run(env->ctx(), env->executor(), req)
                   .ValueOrDie();
    const ShardedSweepStats& stats = out.sharded_stats;
    ShardLeg leg;
    leg.wall_seconds = timer.Seconds();
    leg.balance_ratio = stats.busy_balance_ratio();
    for (double busy : stats.worker_busy_seconds) {
      leg.busy_total_seconds += busy;
    }
    leg.tiles = stats.tiles_total;
    leg.bit_identical = MapsBitIdentical(serial_map, out.map());
    std::printf("sharded across %u workers (%s tiles): %.2fs (%.2fx, "
                "balance %.2f)\n",
                shard_workers, CostModelKindName(model), leg.wall_seconds,
                leg.wall_seconds > 0 ? serial_wall / leg.wall_seconds : 0.0,
                leg.balance_ratio);
    return leg;
  };
  const ShardLeg uniform_leg = run_shard_leg(
      CostModelKind::kUniform, "robustness_shards_uniform", nullptr);
  phase_walls.emplace_back("sharded_uniform", uniform_leg.wall_seconds);
  const ShardLeg weighted_leg =
      run_shard_leg(scale.cost_model, "robustness_shards", &cell_cache);
  phase_walls.emplace_back("sharded_weighted", weighted_leg.wall_seconds);
  bool sharded_bit_identical =
      uniform_leg.bit_identical && weighted_leg.bit_identical;

  // Fourth leg, the "never measure a cell twice" half of the scorecard: a
  // threaded rerun of the full study against the cache the weighted leg
  // just filled. Every cell must come back as a hit — zero measurements —
  // and the resulting map must still equal the serial one bit for bit.
  CacheLeg cache_leg;
  const auto counter = [](const std::map<std::string, uint64_t>& c,
                          const char* name) -> uint64_t {
    const auto it = c.find(name);
    return it == c.end() ? 0 : it->second;
  };
  const auto before = SweepTelemetry::Get().Counters();
  SweepRequest warm_req = StudyRequest(scale, AllStudyPlans(), grid);
  warm_req.cell_cache = &cell_cache;
  WallTimer warm_timer;
  auto warm_map = std::move(
      SweepEngine::Run(env->ctx(), env->executor(), warm_req)
          .ValueOrDie()
          .layers.front());
  cache_leg.warm_wall_seconds = warm_timer.Seconds();
  phase_walls.emplace_back("cache_warm", cache_leg.warm_wall_seconds);
  const auto after = SweepTelemetry::Get().Counters();
  cache_leg.cells_reused = counter(after, "sweep.cells_reused") -
                           counter(before, "sweep.cells_reused");
  const uint64_t hits =
      counter(after, "cache.hits") - counter(before, "cache.hits");
  const uint64_t misses =
      counter(after, "cache.misses") - counter(before, "cache.misses");
  cache_leg.hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  const bool warm_bit_identical = MapsBitIdentical(serial_map, warm_map);
  std::printf("cache-warm rerun: %.2fs, %llu of %zu cells reused "
              "(hit rate %.3f)\n",
              cache_leg.warm_wall_seconds,
              static_cast<unsigned long long>(cache_leg.cells_reused),
              map.num_plans() * grid.num_points(), cache_leg.hit_rate);

  // Fifth leg: the same study swept coarse-to-fine on a fresh cache (the
  // engine brings its own when the request carries none), timing how early
  // the first stride-8 snapshot lands relative to the full-resolution
  // finish — the progressive mode's reason to exist.
  SweepRequest prog_req = StudyRequest(scale, AllStudyPlans(), grid);
  prog_req.progressive.initial_stride = 8;
  WallTimer prog_timer;
  prog_req.progressive.on_snapshot =
      [&](size_t stride, const std::vector<RobustnessMap>&) {
        if (cache_leg.first_snapshot_seconds == 0) {
          cache_leg.first_snapshot_seconds = prog_timer.Seconds();
        }
        if (scale.verbose) {
          std::fprintf(stderr, "  progressive: stride-%zu snapshot at "
                       "%.2fs\n",
                       stride, prog_timer.Seconds());
        }
      };
  auto prog_map = std::move(
      SweepEngine::Run(env->ctx(), env->executor(), prog_req)
          .ValueOrDie()
          .layers.front());
  cache_leg.progressive_wall_seconds = prog_timer.Seconds();
  phase_walls.emplace_back("progressive", cache_leg.progressive_wall_seconds);
  const bool progressive_bit_identical =
      MapsBitIdentical(serial_map, prog_map);
  std::printf("progressive sweep: first snapshot %.2fs, full map %.2fs\n",
              cache_leg.first_snapshot_seconds,
              cache_leg.progressive_wall_seconds);

  WallTimer analysis_timer;
  RelativeMap rel = ComputeRelative(map);

  std::printf("\n2-D criteria (Figures 4-10 family):\n");
  SymmetryScore mj = ComputeSymmetry(
      grid, map.SecondsOfPlan(map.PlanIndexOf("A.mj(a,b)").ValueOrDie()));
  Check(mj.is_symmetric(), "merge join symmetry", mj.max_abs_log2_ratio,
        "max |log2 ratio| (must be <0.33, Figure 5)");

  size_t mdam = map.PlanIndexOf("C.mdam(a,b)").ValueOrDie();
  double mdam_worst = WorstQuotient(rel, mdam);
  Check(mdam_worst < 50, "MDAM covering plan worst-case factor", mdam_worst,
        "x vs. best of 13 (Figure 9: reasonable everywhere)");

  size_t cover_b = map.PlanIndexOf("B.cover(a,b).bitmap").ValueOrDie();
  size_t single_a = map.PlanIndexOf("A.idx_a.improved").ValueOrDie();
  Check(WorstQuotient(rel, cover_b) < WorstQuotient(rel, single_a),
        "covering beats single-index worst case",
        WorstQuotient(rel, cover_b) / WorstQuotient(rel, single_a),
        "ratio of worst factors (must be <1, Figure 8)");

  OptimalityMap opt = ComputeOptimality(map, ToleranceSpec{0.0, 1.20});
  size_t multi = 0;
  for (int c : opt.counts) {
    if (c >= 2) ++multi;
  }
  double multi_frac = static_cast<double>(multi) / opt.counts.size();
  Check(multi_frac > 0.5, "points with multiple near-optimal plans",
        multi_frac * 100, "% at 20% tolerance (Figure 10)");

  PlanDiagram diagram = ComputePlanDiagram(map, ToleranceSpec{0.0, 1.01});
  double frag = 0;
  for (const RegionStats& r : diagram.winner_regions) {
    frag = std::max(frag, r.fragmentation);
  }
  Check(frag < 0.5, "optimality regions not shattered", frag,
        "max fragmentation (irregular regions = idiosyncrasies, §3.4)");

  std::printf("\nSweep-engine criteria:\n");
  Check(bit_identical, "parallel sweep bit-identical to serial",
        bit_identical ? 1 : 0, "every cell equal (determinism contract)");
  Check(sharded_bit_identical, "sharded sweep bit-identical to serial",
        sharded_bit_identical ? 1 : 0,
        "merged tiles equal serial map, uniform and cost-weighted");
  Check(warm_bit_identical, "cache-warm sweep bit-identical to serial",
        warm_bit_identical ? 1 : 0,
        "a map built from cache hits equals a measured one");
  const size_t study_cells = map.num_plans() * grid.num_points();
  Check(cache_leg.cells_reused == study_cells,
        "cache-warm sweep measures nothing",
        static_cast<double>(cache_leg.cells_reused),
        "cells reused (must equal the cell count)");
  Check(progressive_bit_identical,
        "progressive sweep bit-identical to serial",
        progressive_bit_identical ? 1 : 0,
        "coarse-to-fine refinement converges to the direct map");
  Check(cache_leg.first_snapshot_seconds > 0,
        "progressive sweep delivered a coarse snapshot",
        cache_leg.first_snapshot_seconds,
        "seconds to first snapshot (wall-clock, reported not trended)");
  // The cost layer's reason to exist: at equal worker and tile counts on
  // the skewed study grid, cost-weighted tiles + heaviest-first dispatch
  // must not leave workers more imbalanced than uniform tiles did. This
  // is the scorecard's only wall-clock-dependent criterion, so it guards
  // itself against noise twice over: a slack term for scheduling jitter,
  // and at sub-second busy totals (where the coordinator's 10 ms reap
  // poll and fork overhead dominate any real signal) the ratios are
  // reported but not gated.
  const bool balance_measurable = uniform_leg.busy_total_seconds >= 1.0 &&
                                  weighted_leg.busy_total_seconds >= 1.0;
  Check(!balance_measurable ||
            weighted_leg.balance_ratio <=
                uniform_leg.balance_ratio * 1.10 + 0.10,
        "cost-weighted scheduling balances workers",
        weighted_leg.balance_ratio,
        (std::string("slowest/mean busy vs ") +
         std::to_string(uniform_leg.balance_ratio).substr(0, 4) +
         " for uniform tiles" +
         (balance_measurable ? "" : " (too fast to gate, reported only)"))
            .c_str());

  phase_walls.emplace_back("analysis", analysis_timer.Seconds());
  WriteBenchJson(scale, map.num_plans(),
                 map.num_plans() * grid.num_points(),
                 parallel_opts.num_threads, serial_wall, parallel_wall,
                 bit_identical, shard_workers, uniform_leg, weighted_leg,
                 cache_leg, phase_walls);
  if (!trace_path.empty()) {
    if (Status s = Tracer::Get().WriteFile(trace_path); !s.ok()) {
      std::fprintf(stderr, "robustness_benchmark: %s\n",
                   s.ToString().c_str());
    }
  }
  if (!telemetry_path.empty()) {
    if (Status s = SweepTelemetry::Get().WriteFile(telemetry_path);
        !s.ok()) {
      std::fprintf(stderr, "robustness_benchmark: %s\n",
                   s.ToString().c_str());
    }
  }

  std::printf("\n%s: %d criterion failure(s)\n",
              g_failures == 0 ? "ROBUSTNESS BENCHMARK PASSED"
                              : "ROBUSTNESS BENCHMARK FAILED",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
