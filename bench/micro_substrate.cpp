// Substrate micro-benchmarks (google-benchmark): regression tracking for
// the data structures the simulator's wall-clock performance rests on.

#include <benchmark/benchmark.h>

#include "common/permutation.h"
#include "common/rng.h"
#include "exec/hash_join.h"
#include "index/btree.h"
#include "index/procedural_index.h"
#include "io/buffer_pool.h"
#include "storage/procedural_table.h"
#include "workload/distributions.h"

namespace robustmap {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_FeistelPermute(benchmark::State& state) {
  FeistelPermutation perm(24, 7);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Permute(x++ & 0xffffff));
  }
}
BENCHMARK(BM_FeistelPermute);

void BM_FeistelInverse(benchmark::State& state) {
  FeistelPermutation perm(24, 7);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Inverse(x++ & 0xffffff));
  }
}
BENCHMARK(BM_FeistelInverse);

void BM_BTreeBulkLoad(benchmark::State& state) {
  int64_t n = state.range(0);
  std::vector<IndexEntry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({i / 4, 0, static_cast<Rid>(i)});
  }
  for (auto _ : state) {
    VirtualClock clock;
    SimDevice device(DiskParameters{}, &clock);
    BTreeOptions opts;
    opts.key_columns = {0};
    auto tree = BTree::BulkLoad(&device, entries, opts);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(100000);

void BM_BTreeSeek(benchmark::State& state) {
  std::vector<IndexEntry> entries;
  for (int64_t i = 0; i < 100000; ++i) {
    entries.push_back({i, 0, static_cast<Rid>(i)});
  }
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  LruBufferPool pool(&device, 4096);
  RunContext ctx;
  ctx.clock = &clock;
  ctx.device = &device;
  ctx.pool = &pool;
  BTreeOptions opts;
  opts.key_columns = {0};
  auto tree = BTree::BulkLoad(&device, entries, opts).ValueOrDie();
  Rng rng(3);
  for (auto _ : state) {
    auto c = tree->Seek(&ctx, static_cast<int64_t>(rng.NextBounded(100000)),
                        INT64_MIN);
    benchmark::DoNotOptimize(c->Valid());
  }
}
BENCHMARK(BM_BTreeSeek);

void BM_ProceduralIndexEntryAt(benchmark::State& state) {
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  ProceduralTableOptions topts;
  topts.row_bits = 20;
  topts.value_bits = 14;
  auto table = ProceduralTable::Create(&device, topts).ValueOrDie();
  ProceduralIndexOptions iopts;
  iopts.key_columns = {0};
  auto index =
      ProceduralIndex::Create(&device, table.get(), iopts).ValueOrDie();
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->EntryAt(k++ & ((1u << 20) - 1)));
  }
}
BENCHMARK(BM_ProceduralIndexEntryAt);

void BM_BufferPoolAccess(benchmark::State& state) {
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  device.AllocateExtent(1 << 20);
  LruBufferPool pool(&device, 8192);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(rng.NextBounded(16384)));
  }
}
BENCHMARK(BM_BufferPoolAccess);

void BM_RidMapInsertFind(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    RidMap map(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      map.Insert(static_cast<Rid>(i * 3), static_cast<uint32_t>(i));
    }
    uint32_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
      hits += map.Find(static_cast<Rid>(i)) != UINT32_MAX ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_RidMapInsertFind)->Arg(100000);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(65536, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace robustmap

BENCHMARK_MAIN();
