// Substrate micro-benchmarks (google-benchmark): regression tracking for
// the data structures the simulator's wall-clock performance rests on,
// plus the executor hot paths a sweep spends its cells in — B-tree
// descent, the three fetch policies, hash-join build/probe, and the
// cold-start-vs-recycle cost of a simulated machine.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/permutation.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "exec/hash_join.h"
#include "index/btree.h"
#include "index/procedural_index.h"
#include "io/buffer_pool.h"
#include "io/run_context.h"
#include "storage/procedural_table.h"
#include "workload/dataset.h"
#include "workload/distributions.h"

namespace robustmap {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_FeistelPermute(benchmark::State& state) {
  FeistelPermutation perm(24, 7);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Permute(x++ & 0xffffff));
  }
}
BENCHMARK(BM_FeistelPermute);

void BM_FeistelInverse(benchmark::State& state) {
  FeistelPermutation perm(24, 7);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.Inverse(x++ & 0xffffff));
  }
}
BENCHMARK(BM_FeistelInverse);

void BM_BTreeBulkLoad(benchmark::State& state) {
  int64_t n = state.range(0);
  std::vector<IndexEntry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({i / 4, 0, static_cast<Rid>(i)});
  }
  for (auto _ : state) {
    VirtualClock clock;
    SimDevice device(DiskParameters{}, &clock);
    BTreeOptions opts;
    opts.key_columns = {0};
    auto tree = BTree::BulkLoad(&device, entries, opts);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(100000);

void BM_BTreeSeek(benchmark::State& state) {
  std::vector<IndexEntry> entries;
  for (int64_t i = 0; i < 100000; ++i) {
    entries.push_back({i, 0, static_cast<Rid>(i)});
  }
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  LruBufferPool pool(&device, 4096);
  RunContext ctx;
  ctx.clock = &clock;
  ctx.device = &device;
  ctx.pool = &pool;
  BTreeOptions opts;
  opts.key_columns = {0};
  auto tree = BTree::BulkLoad(&device, entries, opts).ValueOrDie();
  Rng rng(3);
  for (auto _ : state) {
    auto c = tree->Seek(&ctx, static_cast<int64_t>(rng.NextBounded(100000)),
                        INT64_MIN);
    benchmark::DoNotOptimize(c->Valid());
  }
}
BENCHMARK(BM_BTreeSeek);

void BM_ProceduralIndexEntryAt(benchmark::State& state) {
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  ProceduralTableOptions topts;
  topts.row_bits = 20;
  topts.value_bits = 14;
  auto table = ProceduralTable::Create(&device, topts).ValueOrDie();
  ProceduralIndexOptions iopts;
  iopts.key_columns = {0};
  auto index =
      ProceduralIndex::Create(&device, table.get(), iopts).ValueOrDie();
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->EntryAt(k++ & ((1u << 20) - 1)));
  }
}
BENCHMARK(BM_ProceduralIndexEntryAt);

void BM_BufferPoolAccess(benchmark::State& state) {
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  device.AllocateExtent(1 << 20);
  LruBufferPool pool(&device, 8192);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(rng.NextBounded(16384)));
  }
}
BENCHMARK(BM_BufferPoolAccess);

void BM_RidMapInsertFind(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    RidMap map(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      map.Insert(static_cast<Rid>(i * 3), static_cast<uint32_t>(i));
    }
    uint32_t hits = 0;
    for (int64_t i = 0; i < n; ++i) {
      hits += map.Find(static_cast<Rid>(i)) != UINT32_MAX ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_RidMapInsertFind)->Arg(100000);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(65536, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

// ---- Executor hot paths -------------------------------------------------
// One shared study environment (2^18 rows — small enough to build once in
// milliseconds, large enough that plans run their real code paths), the
// same database every cell of a sweep executes against.

StudyEnvironment& MicroEnv() {
  static std::unique_ptr<StudyEnvironment> env = [] {
    StudyOptions opts;
    opts.row_bits = 18;
    return StudyEnvironment::Create(opts).ValueOrDie();
  }();
  return *env;
}

// Measures one full cell — ColdStart, plan execution, drain — for `kind`
// at 1% selectivity on both predicates: the per-cell unit the batched
// sweep loops amortize their setup across.
void RunPlanCell(benchmark::State& state, PlanKind kind) {
  StudyEnvironment& env = MicroEnv();
  const Executor::PreparedPlan plan =
      env.executor().Prepare(kind).ValueOrDie();
  const QuerySpec query = env.MakeQuery(0.01, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.executor().Run(env.ctx(), plan, query).ValueOrDie());
  }
}

// The three fetch policies of exec/fetch.h, as the study plans exercise
// them: per-rid random fetches, rid-sorted skip-sequential sweep, and the
// bitmap-ordered variant.
void BM_FetchNaive(benchmark::State& state) {
  RunPlanCell(state, PlanKind::kIndexANaive);
}
BENCHMARK(BM_FetchNaive);

void BM_FetchSorted(benchmark::State& state) {
  RunPlanCell(state, PlanKind::kIndexAImproved);
}
BENCHMARK(BM_FetchSorted);

void BM_FetchBitmap(benchmark::State& state) {
  RunPlanCell(state, PlanKind::kCoverABBitmapFetch);
}
BENCHMARK(BM_FetchBitmap);

// Hash-join build + probe (rid intersection over both single-column
// indexes), and the covering merge join it competes with.
void BM_HashJoinBuildProbe(benchmark::State& state) {
  RunPlanCell(state, PlanKind::kHashJoinAB);
}
BENCHMARK(BM_HashJoinBuildProbe);

void BM_MergeJoinCell(benchmark::State& state) {
  RunPlanCell(state, PlanKind::kMergeJoinAB);
}
BENCHMARK(BM_MergeJoinCell);

// Cold start vs. arena recycle of a simulated machine, measured around the
// same cell. `page_node_allocs` counts fresh LRU node heap allocations per
// iteration: a recycled machine re-reads its pages into recycled nodes, so
// the counter must sit well below the cold-start figure — the deterministic
// form of the speedup, independent of the host's allocator and load.
void MachineCell(benchmark::State& state, bool recycle) {
  StudyEnvironment& env = MicroEnv();
  RunContextFactory factory(*env.ctx());
  const Executor::PreparedPlan plan =
      env.executor().Prepare(PlanKind::kIndexAImproved).ValueOrDie();
  const QuerySpec query = env.MakeQuery(0.01, 0.01);
  if (recycle) factory.Release(factory.Create());
  uint64_t node_allocs = 0;
  for (auto _ : state) {
    std::unique_ptr<OwnedRunContext> machine =
        recycle ? factory.Acquire() : factory.Create();
    const uint64_t before = machine->ctx()->pool->node_allocations();
    benchmark::DoNotOptimize(
        env.executor().Run(machine->ctx(), plan, query).ValueOrDie());
    node_allocs += machine->ctx()->pool->node_allocations() - before;
    if (recycle) factory.Release(std::move(machine));
  }
  state.counters["page_node_allocs"] = benchmark::Counter(
      static_cast<double>(node_allocs), benchmark::Counter::kAvgIterations);
}

void BM_MachineColdStart(benchmark::State& state) {
  MachineCell(state, /*recycle=*/false);
}
BENCHMARK(BM_MachineColdStart);

void BM_MachineRecycle(benchmark::State& state) {
  MachineCell(state, /*recycle=*/true);
}
BENCHMARK(BM_MachineRecycle);

}  // namespace
}  // namespace robustmap

BENCHMARK_MAIN();
