#ifndef ROBUSTMAP_BENCH_SHARD_CLI_H_
#define ROBUSTMAP_BENCH_SHARD_CLI_H_

#include <memory>
#include <string>
#include <vector>

#include "core/parameter_space.h"
#include "engine/plan.h"
#include "workload/dataset.h"

namespace robustmap::bench {

/// The grid and scale a sharded sweep runs over, as shared between the
/// `sweep_shard` coordinator and the `sweep_worker` it exec's. A tile id is
/// only meaningful relative to an exact grid, so both binaries parse — and
/// the coordinator re-serializes — these flags through this one struct.
struct ShardGrid {
  int row_bits = 16;
  int min_log2 = -8;
  int steps_per_octave = 1;
  std::string plan_set = "all";  ///< "all" (13 plans) or "smoke" (4)
};

/// "--name=value" parsing; returns false when `arg` doesn't start with
/// "--name=".
bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value);
bool ParseIntFlag(const std::string& arg, const std::string& name,
                  int* value);

/// Consumes one grid flag (--row-bits, --min-log2, --steps-per-octave,
/// --plans); returns false if `arg` is none of them.
bool ParseGridFlag(const std::string& arg, ShardGrid* grid);

/// Grid flags rendered back to argv form, for exec'ing workers.
std::vector<std::string> GridArgs(const ShardGrid& grid);

/// The value-domain bits a study at `row_bits` uses — the same derivation
/// as `ResolveScale`, shared so the grid clamp and the worker-built
/// databases can never disagree with the coordinator's.
int ValueBitsFor(int row_bits);

/// The 2-D selectivity space the grid describes.
ParameterSpace MakeGridSpace(const ShardGrid& grid);

/// The plans the grid's plan set names; empty for an unknown set.
std::vector<PlanKind> GridPlans(const ShardGrid& grid);

/// Study environment at the grid's scale (value domain derived from
/// row_bits exactly as `ResolveScale` does, so worker and coordinator
/// databases are identical).
std::unique_ptr<StudyEnvironment> MakeGridEnvironment(const ShardGrid& grid);

}  // namespace robustmap::bench

#endif  // ROBUSTMAP_BENCH_SHARD_CLI_H_
