// Sharded sweeps on a fine grid — the scaling step past one machine's
// cores that ROADMAP calls for. The paper's maps get interesting exactly
// when they get expensive (steps-per-octave > 1, 13+ plans); this driver
// runs such a grid sharded 1, 2, and 8 ways through the multi-process
// coordinator and self-checks the whole contract:
//
//   * every merged sharded map is bit-identical to the serial single-process
//     sweep of the same grid, whatever the worker count;
//   * a resumed sweep recomputes nothing when all tiles are valid;
//   * after deleting one tile and corrupting another, resume recomputes
//     exactly those two and still merges the identical map;
//   * uniform, analytic, and measured cost models all merge the identical
//     map — scheduling is allowed to move tile boundaries, never values —
//     and the measured model picks up the wall times the previous run
//     stamped into its tiles.
//
// Exits non-zero on any failed check — ready for CI.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/sharded_sweep.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

int g_failures = 0;

void Check(bool ok, const char* name, double value, const char* detail) {
  std::printf("  [%s] %-52s %10.4g   %s\n", ok ? "PASS" : "FAIL", name, value,
              detail);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/16,
                                  /*default_min_log2=*/-8);
  PrintHeader("Sharded sweeps: multi-process tiles on a fine grid",
              "fine grids x many plans outgrow one process; tiled sharding "
              "with lossless merge keeps maps exact",
              scale);

  StudyOptions sopts;
  sopts.row_bits = scale.row_bits;
  sopts.value_bits = scale.value_bits;
  auto env = StudyEnvironment::Create(sopts).ValueOrDie();

  // Two steps per octave: the "finer grid" refinement of §3.1, four times
  // the cells of the classic per-octave grid.
  ParameterSpace space = ParameterSpace::TwoD(
      Axis::SelectivityFine("selectivity(a)", scale.grid_min_log2, 0, 2),
      Axis::SelectivityFine("selectivity(b)", scale.grid_min_log2, 0, 2));
  const std::vector<PlanKind> plans = {
      PlanKind::kTableScan,   PlanKind::kIndexAImproved,
      PlanKind::kMergeJoinAB, PlanKind::kHashJoinAB,
      PlanKind::kMdamAB,      PlanKind::kCoverABBitmapFetch};
  std::printf("grid: %zux%zu points, %zu plans, %zu cells\n", space.x_size(),
              space.y_size(), plans.size(),
              plans.size() * space.num_points());

  WallTimer serial_timer;
  SweepRequest serial_req = StudyRequest(scale, plans, space);
  serial_req.backend = BackendKind::kSerial;
  auto serial = std::move(SweepEngine::Run(env->ctx(), env->executor(),
                                           serial_req)
                              .ValueOrDie()
                              .layers.front());
  double serial_wall = serial_timer.Seconds();
  std::printf("serial single-process sweep: %.2fs\n\n", serial_wall);

  std::string last_dir;
  size_t last_tiles = 0;
  for (unsigned workers : {1u, 2u, 8u}) {
    ShardedSweepOptions opts;
    opts.tile_dir = OutDir() + "/fig_sharded_w" + std::to_string(workers);
    opts.num_workers = workers;
    opts.resume = false;  // a fresh timing run, not a resume
    opts.verbose = scale.verbose;
    ShardedSweepStats stats;
    WallTimer timer;
    auto merged = RunShardedSweep(env->ctx(), env->executor(), plans, space,
                                  opts, &stats)
                      .ValueOrDie();
    double wall = timer.Seconds();
    std::printf("%u worker process(es): %zu tiles, %.2fs (%.2fx, "
                "balance %.2f)\n",
                workers, stats.tiles_total, wall,
                wall > 0 ? serial_wall / wall : 0.0,
                stats.busy_balance_ratio());
    Check(MapsBitIdentical(serial, merged),
          ("merged map == serial map, " + std::to_string(workers) +
           " worker(s)")
              .c_str(),
          static_cast<double>(workers), "every cell equal (lossless merge)");
    last_dir = opts.tile_dir;
    last_tiles = stats.tiles_total;
  }

  // Checkpoint/resume: a second pass over the 8-way directory must reuse
  // every tile; after deleting one and flipping a byte in another it must
  // recompute exactly those two.
  {
    ShardedSweepOptions opts;
    opts.tile_dir = last_dir;
    opts.num_workers =
        scale.num_shards != 0 ? scale.num_shards : 8;  // REPRO_SHARDS
    opts.num_tiles = last_tiles;
    opts.verbose = scale.verbose;
    ShardedSweepStats stats;
    auto merged = RunShardedSweep(env->ctx(), env->executor(), plans, space,
                                  opts, &stats)
                      .ValueOrDie();
    Check(stats.tiles_reused == stats.tiles_total &&
              stats.tiles_computed == 0,
          "resume with all tiles valid recomputes nothing",
          static_cast<double>(stats.tiles_reused), "tiles reused");

    std::remove((last_dir + "/" + TileFileName(0)).c_str());
    {
      std::fstream f(last_dir + "/" + TileFileName(1),
                     std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(64);
      f.put('\x5a');
    }
    auto resumed = RunShardedSweep(env->ctx(), env->executor(), plans, space,
                                   opts, &stats)
                       .ValueOrDie();
    // Two pending tiles on an 8-worker box is exactly the straggler shape:
    // the splitter cuts the recomputation finer (one extra tile per
    // split), but only the two damaged tiles' cells are recomputed.
    Check(stats.tiles_computed == 2 + stats.tiles_split,
          "resume recomputes only the missing + corrupt tiles",
          static_cast<double>(stats.tiles_computed),
          "tiles recomputed (1 deleted + 1 corrupted, straggler-split)");
    Check(MapsBitIdentical(serial, resumed), "resumed map still == serial",
          1, "checkpoint damage is fully healed");
  }

  // Cost models: scheduling may reshape and reorder tiles, but never the
  // map. Uniform tiles (the pre-cost-layer planner) and a measured-cost
  // re-balance (fed by the wall times the analytic run above left in its
  // tiles) must both merge the same bytes.
  {
    ShardedSweepOptions uopts;
    uopts.tile_dir = OutDir() + "/fig_sharded_uniform";
    uopts.num_workers = 8;
    uopts.resume = false;
    uopts.verbose = scale.verbose;
    uopts.cost_model = CostModelKind::kUniform;
    ShardedSweepStats ustats;
    auto uniform = RunShardedSweep(env->ctx(), env->executor(), plans, space,
                                   uopts, &ustats)
                       .ValueOrDie();
    Check(MapsBitIdentical(serial, uniform),
          "uniform cost model merges == serial", ustats.busy_balance_ratio(),
          "balance ratio (slowest/mean worker)");

    // The measured-feedback contract, checked at its root: every readable
    // tile the runs above left behind must carry a positive wall time (if
    // stamping silently regressed, MeasuredCostModelFromDir would fall
    // back to the analytic prior and a weaker check would still pass).
    // Scanned by directory, not by planned id: the heal above replaced
    // two planned tiles with straggler pieces under fresh ids and left
    // one corrupt (unreadable, hence unusable) file behind.
    std::vector<std::pair<std::string, MapTile>> disk_tiles;
    auto measured_model =
        MeasuredCostModelFromDir(last_dir, space, &disk_tiles).ValueOrDie();
    size_t timed_tiles = 0;
    double wall_sum = 0;
    for (const auto& entry : disk_tiles) {
      if (entry.second.wall_seconds > 0) {
        ++timed_tiles;
        wall_sum += entry.second.wall_seconds;
      }
    }
    Check(!disk_tiles.empty() && timed_tiles == disk_tiles.size(),
          "every computed tile carries its wall time",
          static_cast<double>(timed_tiles), "timed tiles (v2 metadata)");
    ShardedSweepOptions mopts;
    mopts.tile_dir = last_dir;
    mopts.num_workers = 8;
    mopts.resume = false;  // measured boundaries differ; this is a re-balance
    mopts.verbose = scale.verbose;
    mopts.cost_model = CostModelKind::kMeasured;
    ShardedSweepStats mstats;
    auto measured = RunShardedSweep(env->ctx(), env->executor(), plans, space,
                                    mopts, &mstats)
                        .ValueOrDie();
    Check(MapsBitIdentical(serial, measured),
          "measured cost model merges == serial",
          mstats.busy_balance_ratio(),
          "balance ratio (slowest/mean worker)");
    // With every tile timed above, the measured model is genuinely built
    // from observations: its total is the tiles' summed wall seconds (as
    // counted before the rerun overwrote them), not the analytic prior's
    // unit-scale weights — a silent fallback-to-prior cannot sneak
    // through.
    Check(wall_sum > 0 &&
              std::abs(measured_model.TotalCost() - wall_sum) <
                  1e-6 * wall_sum,
          "measured model rebuilt from prior run's tile timings",
          measured_model.TotalCost(), "summed measured seconds");
  }

  // Study × backend composition: the sharded warm/cold/delta study — the
  // §3.2 buffer-contents study past one process for the first time. All
  // three merged layers must be bit-identical to the serial
  // `RunWarmColdSweep` reference, and a resumed run must reuse every
  // multi-layer tile.
  {
    WarmupPolicy policy = WarmupPolicy::FractionResident(0.5);
    SweepOptions serial_opts;
    serial_opts.num_threads = 1;
    serial_opts.verbose = scale.verbose;
    auto reference = RunWarmColdSweep(env->ctx(), env->executor(), plans,
                                      space, policy, serial_opts)
                         .ValueOrDie();

    SweepRequest req;
    req.plans = plans;
    req.space = space;
    req.study = StudyKind::kWarmColdDelta;
    req.backend = BackendKind::kShardedProcess;
    req.warm_policy = policy;
    req.sharded.tile_dir = OutDir() + "/fig_sharded_warmcold";
    req.sharded.num_workers = scale.num_shards != 0 ? scale.num_shards : 4;
    req.sharded.num_tiles = 8;
    req.sharded.resume = false;
    req.sharded.verbose = scale.verbose;
    auto sharded = SweepEngine::Run(env->ctx(), env->executor(), req)
                       .ValueOrDie();
    Check(MapsBitIdentical(reference.cold, sharded.cold()) &&
              MapsBitIdentical(reference.warm, sharded.warm()) &&
              MapsBitIdentical(reference.delta, sharded.delta()),
          "sharded warm/cold/delta == serial RunWarmColdSweep", 3,
          "all three merged layers bit-identical");

    req.sharded.resume = true;
    auto resumed = SweepEngine::Run(env->ctx(), env->executor(), req)
                       .ValueOrDie();
    Check(resumed.sharded_stats.tiles_reused ==
                  resumed.sharded_stats.tiles_total &&
              resumed.sharded_stats.tiles_computed == 0 &&
              MapsBitIdentical(reference.delta, resumed.delta()),
          "warm/cold resume reuses every multi-layer tile",
          static_cast<double>(resumed.sharded_stats.tiles_reused),
          "three-layer tiles revalidated from disk");

    ExportWarmColdMaps("fig_sharded_warmcold", reference);
  }

  ExportMap("fig_sharded_sweep", serial);

  std::printf("\n%d self-check failure(s)\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}
