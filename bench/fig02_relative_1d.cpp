// Figure 2: advanced selection plans, performance relative to the best plan
// at each point of the 1-D selectivity space.
//
// Adds the multi-index plans ("join non-clustered indexes such that the join
// result covers the query even if no single non-clustered index does") and
// switches from absolute to relative performance, the paper's device for
// keeping resolution when absolute costs span many decades.

#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/20);
  PrintHeader("Figure 2: advanced selection plans, relative performance (1-D)",
              "multi-index covering joins win at low selectivity, the table "
              "scan at high; no single plan is near-optimal everywhere",
              scale);
  auto env = MakeEnvironment(scale);

  std::vector<PlanKind> plans = {
      PlanKind::kTableScan,   PlanKind::kIndexANaive,
      PlanKind::kIndexAImproved, PlanKind::kMergeJoinAB,
      PlanKind::kMergeJoinBA, PlanKind::kHashJoinAB,
      PlanKind::kHashJoinBA,
  };
  ParameterSpace space = ParameterSpace::OneD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0));
  auto map = RunStudyMap(env.get(), plans, space, scale);
  RelativeMap rel = ComputeRelative(map);

  std::vector<std::string> header = {"selectivity", "best plan"};
  for (const auto& label : map.plan_labels()) header.push_back(label);
  TextTable t(header);
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    std::vector<std::string> row;
    row.push_back(FormatSelectivity(space.x_value(pt)));
    row.push_back(map.plan_label(rel.best_plan[pt]));
    char buf[32];
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      std::snprintf(buf, sizeof(buf), "%.3gx", rel.quotient[pl][pt]);
      row.emplace_back(buf);
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s", t.ToString().c_str());

  std::vector<ChartSeries> series;
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    series.push_back({map.plan_label(pl), rel.quotient[pl]});
  }
  ChartOptions copts;
  copts.title = "\nFigure 2 (log-log): cost factor vs. best plan";
  copts.x_label = "selectivity of predicate on a";
  std::printf("%s", RenderChart(space.x().values, series, copts).c_str());

  std::printf("\nWorst factor per plan:\n");
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    std::printf("  %-24s %.3gx\n", map.plan_label(pl).c_str(),
                WorstQuotient(rel, pl));
  }

  ExportMap("fig02_relative_1d", map);
  return 0;
}
