#include "bench_util.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/format.h"
#include "shard_cli.h"
#include "core/landmarks.h"
#include "core/map_io.h"
#include "viz/gnuplot_export.h"
#include "viz/ppm_writer.h"

namespace robustmap::bench {

namespace {

/// The full-grid TileSpec of a space — how a complete map is framed as a
/// tile for serialization.
TileSpec FullGridSpec(const ParameterSpace& space) {
  TileSpec full;
  full.x_begin = 0;
  full.x_end = space.x_size();
  full.y_begin = 0;
  full.y_end = space.y_size();
  return full;
}

}  // namespace

int EnvInt(const char* name, int def, int lo, int hi) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read in single-threaded setup
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return def;
  char* end = nullptr;
  long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "%s=%s ignored (want an integer in [%d, %d])\n",
                 name, raw, lo, hi);
    return def;
  }
  return static_cast<int>(v);
}

bool EnvFlag(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read in single-threaded setup
  const char* raw = std::getenv(name);
  return raw != nullptr && raw[0] == '1';
}

std::string EnvString(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read in single-threaded setup
  const char* raw = std::getenv(name);
  return raw == nullptr ? std::string() : raw;
}

CostModelKind EnvCostModel(CostModelKind def) {
  const std::string raw = EnvString("REPRO_COST_MODEL");
  if (raw.empty()) return def;
  auto kind = CostModelKindFromString(raw);
  if (!kind.ok()) {
    std::fprintf(stderr, "REPRO_COST_MODEL=%s ignored (%s)\n", raw.c_str(),
                 kind.status().message().c_str());
    return def;
  }
  return kind.value();
}

StudyKind EnvStudy(StudyKind def) {
  const std::string raw = EnvString("REPRO_STUDY");
  if (raw.empty()) return def;
  auto kind = StudyKindFromString(raw);
  if (!kind.ok()) {
    std::fprintf(stderr, "REPRO_STUDY=%s ignored (%s)\n", raw.c_str(),
                 kind.status().message().c_str());
    return def;
  }
  return kind.value();
}

BenchScale ResolveScale(int default_row_bits, int default_min_log2) {
  BenchScale s;
  s.row_bits = default_row_bits;
  s.grid_min_log2 = default_min_log2;
  if (EnvFlag("REPRO_FAST")) {
    s.row_bits = 16;
    s.grid_min_log2 = -12;
  }
  if (int v = EnvInt("REPRO_ROW_BITS", s.row_bits, 12, 30); v % 2 == 0) {
    s.row_bits = v;
  }
  // Domain 2^16 gives the paper's 2^-16 finest selectivity; never exceed the
  // row count.
  s.value_bits = ValueBitsFor(s.row_bits);
  if (s.grid_min_log2 < -s.value_bits) s.grid_min_log2 = -s.value_bits;
  s.num_threads =
      static_cast<unsigned>(EnvInt("REPRO_THREADS", 0, 0, 256));
  s.num_shards = static_cast<unsigned>(EnvInt("REPRO_SHARDS", 0, 0, 256));
  s.cost_model = EnvCostModel(s.cost_model);
  s.verbose = EnvFlag("REPRO_VERBOSE");
  return s;
}

SweepRequest StudyRequest(const BenchScale& scale,
                          std::vector<PlanKind> plans,
                          ParameterSpace space) {
  SweepRequest req;
  req.plans = std::move(plans);
  req.space = std::move(space);
  req.study = StudyKind::kPlainMap;
  req.backend = BackendKind::kThreaded;
  req.sweep = SweepOpts(scale);
  req.sharded.num_workers = scale.num_shards;
  req.sharded.cost_model = scale.cost_model;
  req.sharded.verbose = scale.verbose;
  return req;
}

RobustnessMap RunStudyMap(StudyEnvironment* env, std::vector<PlanKind> plans,
                          ParameterSpace space, const BenchScale& scale) {
  SweepOutcome out = SweepEngine::Run(
                         env->ctx(), env->executor(),
                         StudyRequest(scale, std::move(plans),
                                      std::move(space)))
                         .ValueOrDie();
  return std::move(out.layers.front());
}

SweepOptions SweepOpts(const BenchScale& scale) {
  SweepOptions opts;
  opts.num_threads = scale.num_threads;
  opts.verbose = scale.verbose;
  return opts;
}

std::unique_ptr<StudyEnvironment> MakeEnvironment(const BenchScale& scale) {
  StudyOptions opts;
  opts.row_bits = scale.row_bits;
  opts.value_bits = scale.value_bits;
  return StudyEnvironment::Create(opts).ValueOrDie();
}

std::string OutDir() {
  std::string dir = "bench_out";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

Status WriteMapRmt(const std::string& path, const RobustnessMap& map) {
  return WriteMapTileFile(path,
                          MapTile{FullGridSpec(map.space()), map.space(),
                                  map});
}

Status WriteWarmColdRmt(const std::string& path, const WarmColdMaps& maps) {
  MapTile tile{FullGridSpec(maps.cold.space()), maps.cold.space(),
               maps.cold};
  tile.layer_names = StudyLayerNames(StudyKind::kWarmColdDelta);
  tile.extra_layers = {maps.warm, maps.delta};
  return WriteMapTileFile(path, tile);
}

void WarnArtifact(const Status& s, const std::string& path) {
  if (!s.ok()) {
    std::fprintf(stderr, "[artifacts] %s not written: %s\n", path.c_str(),
                 s.ToString().c_str());
  }
}

void ExportMap(const std::string& figure_name, const RobustnessMap& map,
               bool relative) {
  std::string base = OutDir() + "/" + figure_name;
  WarnArtifact(WriteMapRmt(base + ".rmt", map), base + ".rmt");
  // The .plt pipes its data straight out of the canonical .rmt, so there is
  // no ready-made .csv/.dat copy to drift out of sync with it — derive
  // either on demand with `map_cat --csv` / `--dat`.
  WarnArtifact(WriteGnuplotPlt(base, map,
                               "< bench/map_cat --dat " + base + ".rmt"),
               base + ".plt");
  if (map.space().is_2d()) {
    ColorScale scale = relative ? ColorScale::RelativeFactor()
                                : ColorScale::AbsoluteSeconds();
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      std::string path = base + "_plan" + std::to_string(pl) + ".ppm";
      WarnArtifact(WritePpm(path, map.space(), map.SecondsOfPlan(pl), scale),
                   path);
    }
  }
  std::printf("[artifacts] %s.rmt, %s.plt written (csv/dat: `map_cat "
              "--csv|--dat %s.rmt`)\n",
              base.c_str(), base.c_str(), base.c_str());
}

void ExportWarmColdMaps(const std::string& figure_name,
                        const WarmColdMaps& maps) {
  ExportMap(figure_name + "_cold", maps.cold);
  ExportMap(figure_name + "_warm", maps.warm);
  std::string base = OutDir() + "/" + figure_name;
  WarnArtifact(WriteWarmColdRmt(base + "_warmcold.rmt", maps),
               base + "_warmcold.rmt");
  if (maps.delta.space().is_2d()) {
    ColorScale diverging = ColorScale::DivergingSeconds();
    for (size_t pl = 0; pl < maps.delta.num_plans(); ++pl) {
      std::string path = base + "_delta_plan" + std::to_string(pl) + ".ppm";
      WarnArtifact(WritePpm(path, maps.delta.space(),
                            maps.delta.SecondsOfPlan(pl), diverging),
                   path);
    }
    WarnArtifact(WriteLegendPpm(base + "_delta_legend.ppm", diverging),
                 base + "_delta_legend.ppm");
  }
  std::printf("[artifacts] %s_warmcold.rmt%s written (per-layer csv: "
              "`map_cat --csv --layer=L`)\n",
              base.c_str(),
              maps.delta.space().is_2d() ? ", *_delta_plan*.ppm" : "");
}

void PrintCurveTable(const RobustnessMap& map) {
  std::vector<std::string> header = {"selectivity", "rows"};
  for (const auto& label : map.plan_labels()) header.push_back(label);
  TextTable t(header);
  const ParameterSpace& space = map.space();
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    std::vector<std::string> row;
    row.push_back(FormatSelectivity(space.x_value(pt)));
    row.push_back(FormatCount(map.At(0, pt).output_rows));
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      row.push_back(FormatSeconds(map.At(pl, pt).seconds));
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s", t.ToString().c_str());
}

void PrintHeader(const std::string& figure, const std::string& claim,
                 const BenchScale& scale) {
  std::printf(
      "==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("Scale: 2^%d rows (%s), value domain 2^%d\n", scale.row_bits,
              FormatCount(uint64_t{1} << scale.row_bits).c_str(),
              scale.value_bits);
  std::printf(
      "==============================================================\n");
}

void PrintCurveLandmarks(const RobustnessMap& map) {
  std::printf("\nLandmark analysis (monotonicity / flattening / jumps):\n");
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    CurveLandmarks lm =
        AnalyzeCurve(map.space().x().values, map.SecondsOfPlan(pl));
    std::printf("  %-24s", map.plan_label(pl).c_str());
    if (lm.clean()) {
      std::printf(" clean\n");
      continue;
    }
    std::printf(" mono_violations=%zu steepenings=%zu discontinuities=%zu",
                lm.monotonicity_violations.size(),
                lm.steepening_points.size(), lm.discontinuities.size());
    if (!lm.steepening_points.empty()) {
      const auto& sp = lm.steepening_points.back();
      std::printf(" (slope %.2f -> %.2f at x=%s)", sp.slope_before,
                  sp.slope_after,
                  FormatSelectivity(map.space().x().values[sp.index]).c_str());
    }
    std::printf("\n");
  }
}

bool MapsBitIdentical(const RobustnessMap& a, const RobustnessMap& b) {
  if (a.num_plans() != b.num_plans() || !(a.space() == b.space()) ||
      a.plan_labels() != b.plan_labels()) {
    return false;
  }
  for (size_t plan = 0; plan < a.num_plans(); ++plan) {
    for (size_t pt = 0; pt < a.space().num_points(); ++pt) {
      const Measurement& ma = a.At(plan, pt);
      const Measurement& mb = b.At(plan, pt);
      if (ma.seconds != mb.seconds || ma.output_rows != mb.output_rows ||
          ma.io.sequential_reads != mb.io.sequential_reads ||
          ma.io.skip_reads != mb.io.skip_reads ||
          ma.io.random_reads != mb.io.random_reads ||
          ma.io.writes != mb.io.writes ||
          ma.io.buffer_hits != mb.io.buffer_hits ||
          ma.io.bytes_read != mb.io.bytes_read ||
          ma.io.bytes_written != mb.io.bytes_written ||
          ma.plan_label != mb.plan_label) {
        return false;
      }
    }
  }
  return true;
}

double CrossoverX(const std::vector<double>& xs, const std::vector<double>& a,
                  const std::vector<double>& b) {
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    if (d0 == 0) return xs[i];
    if (d0 * d1 < 0) {
      // Interpolate in log space for geometric axes.
      double l0 = std::log(a[i] / b[i]);
      double l1 = std::log(a[i + 1] / b[i + 1]);
      double t = l0 / (l0 - l1);
      return std::exp(std::log(xs[i]) +
                      t * (std::log(xs[i + 1]) - std::log(xs[i])));
    }
  }
  return -1;
}

}  // namespace robustmap::bench
