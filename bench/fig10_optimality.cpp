// Figure 10: how many plans are "optimal" at each point of the parameter
// space, under the paper's 0.1 s measurement tolerance — plus the relative
// tolerance variants it discusses (1%, 20%, factor 2).
//
// "Most points in the parameter space have multiple optimal plans"; strict
// argmin maps would need multiple colors per point. Also reports the §3.3
// plan inventory: 7 System A plans + 3 + 3 = 13 distinct plans.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/optimality.h"
#include "core/sweep.h"
#include "engine/plan_enumerator.h"
#include "engine/system.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Figure 10: optimal plans per point (all 13 plans)",
              "most points have multiple optimal plans within measurement "
              "tolerance; 7 + 3 + 3 = 13 distinct plans across systems",
              scale);
  auto env = MakeEnvironment(scale);

  // Plan inventory (the paper's §3.3 accounting).
  QuerySpec q2 = env->MakeQuery(0.5, 0.5);
  std::printf("plan inventory for the two-predicate query:\n");
  size_t total = 0;
  for (const SystemConfig& sys : SystemConfig::AllSystems()) {
    auto plans = EnumeratePlans(sys, q2);
    std::printf("  %-9s %zu plans:", sys.name.c_str(), plans.size());
    for (const auto& p : plans) std::printf(" %s", p.label.c_str());
    std::printf("\n");
    total += plans.size();
  }
  std::printf("  total distinct plans: %zu (paper: 13)\n\n", total);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map =
      RunStudyMap(env.get(), AllStudyPlans(), space, scale);

  // The paper's 0.1 s tolerance was measured against ~10^2..10^3-second
  // runs; scale it with the data so the *relative* meaning carries over.
  double abs_tol =
      0.1 * std::exp2(static_cast<double>(scale.row_bits) - 26);
  char abs_name[96];
  std::snprintf(abs_name, sizeof(abs_name),
                "%.3g s absolute (the paper's 0.1 s scaled from 2^26 rows)",
                abs_tol);
  struct Variant {
    const char* name;
    ToleranceSpec tol;
  } variants[] = {
      {abs_name, {abs_tol, 1.0}},
      {"1% relative", {0.0, 1.01}},
      {"20% relative", {0.0, 1.20}},
      {"factor 2", {0.0, 2.0}},
  };

  for (const auto& v : variants) {
    OptimalityMap opt = ComputeOptimality(map, v.tol);
    int max_count = 0;
    size_t multi = 0;
    double sum = 0;
    for (int c : opt.counts) {
      max_count = std::max(max_count, c);
      if (c >= 2) ++multi;
      sum += c;
    }
    std::printf("tolerance %s:\n", v.name);
    std::printf("  points with multiple optimal plans: %zu / %zu (%.0f%%), "
                "mean %.2f, max %d\n",
                multi, opt.counts.size(),
                100.0 * multi / opt.counts.size(), sum / opt.counts.size(),
                max_count);
    auto never = PlansNeverOptimal(opt);
    std::printf("  plans never optimal (candidates to prune from the "
                "optimizer's search space): %zu\n",
                never.size());
    for (size_t pl : never) {
      std::printf("    - %s\n", map.plan_label(pl).c_str());
    }
  }

  OptimalityMap opt = ComputeOptimality(map, ToleranceSpec{abs_tol, 1.0});
  std::vector<double> counts(opt.counts.begin(), opt.counts.end());
  ColorScale cs = ColorScale::Counts(13);
  HeatmapOptions hopts;
  hopts.title =
      "\nFigure 10: number of optimal plans per point (scaled 0.1 s tol)";
  std::printf("%s", RenderHeatmap(space, counts, cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  ExportMap("fig10_optimality", map, /*relative=*/true);
  return 0;
}
