// Ablation: memory as a run-time condition (paper §1/§3.2: "resource
// availability such as memory" is a first-class robustness dimension).
//
// 2-D robustness map of the hash-join plan with build-side selectivity on
// one axis and hash work memory on the other: Grace-partitioning cliffs
// appear where the build side outgrows memory.

#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "core/landmarks.h"
#include "core/sweep.h"
#include "engine/query.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/16, /*min_log2=*/-12);
  PrintHeader("Ablation: hash-join memory map (2-D: selectivity x memory)",
              "performance degrades where the build side exceeds work "
              "memory; the map shows how gracefully",
              scale);
  auto env = MakeEnvironment(scale);
  uint64_t rows = uint64_t{1} << scale.row_bits;

  Axis sel = Axis::Selectivity("build selectivity(a)", scale.grid_min_log2, 0);
  // Memory axis: from rows/64 bytes up to 16*rows bytes (build needs 16
  // bytes/row, so the top rows never spill and the bottom rows always do).
  Axis memory{"hash memory [bytes]", {}};
  for (double m = static_cast<double>(rows) / 64;
       m <= static_cast<double>(rows) * 16; m *= 4) {
    memory.values.push_back(m);
  }
  ParameterSpace space = ParameterSpace::TwoD(sel, memory);

  // Each worker varies the memory budget on its *own* machine, so the
  // memory axis parallelizes without cross-cell interference.
  RunContextFactory factory(*env->ctx());
  auto map =
      SweepEngine::RunCellsParallel(
          space, {"A.hj(a,b) s_b=1"}, factory,
          [&](RunContext* ctx, size_t, double s,
              double mem) -> Result<Measurement> {
            ctx->hash_memory_bytes = static_cast<uint64_t>(mem);
            QuerySpec q = env->MakeQuery(s, 1.0);
            return env->executor().Run(ctx, PlanKind::kHashJoinAB, q);
          },
          SweepOpts(scale))
          .ValueOrDie();

  ColorScale cs = ColorScale::AbsoluteSeconds();
  HeatmapOptions hopts;
  hopts.title = "\nhash join cost over (build selectivity, memory)";
  std::printf(
      "%s", RenderHeatmap(space, map.SecondsOfPlan(0), cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  // Along the memory axis (for the largest build), cost must be monotone
  // non-increasing; count violations and measure the spill cliff.
  std::printf("\nspill cliff along the memory axis at selectivity 1:\n");
  auto grid = map.SecondsOfPlan(0);
  size_t xi = space.x_size() - 1;
  double worst_ratio = 1;
  for (size_t yi = 0; yi + 1 < space.y_size(); ++yi) {
    double with_less = grid[space.IndexOf(xi, yi)];
    double with_more = grid[space.IndexOf(xi, yi + 1)];
    worst_ratio = std::max(worst_ratio, with_less / with_more);
    std::printf("  mem %-10s -> %s\n",
                FormatBytes(static_cast<uint64_t>(memory.values[yi])).c_str(),
                FormatSeconds(with_less).c_str());
  }
  std::printf("  max speedup from one 4x memory step: %.2fx\n", worst_ratio);

  ExportMap("ablation_memory_map", map);
  return 0;
}
