// map_cat — make binary .rmt tile and merged-map files self-serving: print
// what a file contains, render it as an ASCII heatmap, or convert it to the
// same CSV the figure benches export, without re-running any sweep.
//
// Usage:
//   map_cat [--info] FILE...        # header summary (default)
//   map_cat --ascii [--plan=K] FILE...   # terminal heatmap / curve table
//   map_cat --csv FILE...           # CSV on stdout (all files concatenated)
//   map_cat --selftest              # write+read+render round trip, exit 0/1
//
// Reads any tile format version this build's reader accepts (v1 files
// simply have no wall-time metadata). Errors name the failing file and are
// distinct for truncation/corruption vs. unknown version, exactly as the
// library reports them.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/color_scale.h"
#include "core/map_io.h"
#include "shard_cli.h"
#include "viz/ascii_heatmap.h"
#include "viz/csv_export.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

void PrintInfo(const std::string& path, const MapTile& tile) {
  const ParameterSpace& parent = tile.parent_space;
  std::printf("%s:\n", path.c_str());
  std::printf("  parent grid : %zux%zu (%s x %s)\n", parent.x_size(),
              parent.y_size(), parent.x().name.c_str(),
              parent.is_2d() ? parent.y().name.c_str() : "-");
  std::printf("  tile        : id %zu, cells [%zu,%zu)x[%zu,%zu) = %zu "
              "points\n",
              tile.spec.shard_id, tile.spec.x_begin, tile.spec.x_end,
              tile.spec.y_begin, tile.spec.y_end, tile.spec.num_points());
  std::printf("  wall time   : %s\n",
              tile.wall_seconds > 0
                  ? (std::to_string(tile.wall_seconds) + " s").c_str()
                  : "(unrecorded)");
  std::printf("  plans (%zu)  :", tile.map.num_plans());
  for (const std::string& label : tile.map.plan_labels()) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n");
}

void PrintAscii(const MapTile& tile, int only_plan) {
  if (!tile.map.space().is_2d()) {
    PrintCurveTable(tile.map);
    return;
  }
  const ColorScale scale = ColorScale::AbsoluteSeconds();
  for (size_t pl = 0; pl < tile.map.num_plans(); ++pl) {
    if (only_plan >= 0 && pl != static_cast<size_t>(only_plan)) continue;
    HeatmapOptions hopts;
    hopts.title = tile.map.plan_label(pl);
    std::printf("%s", RenderHeatmap(tile.map.space(),
                                    tile.map.SecondsOfPlan(pl), scale, hopts)
                          .c_str());
  }
}

/// The round-trip smoke test ctest runs: a synthetic sub-rectangle tile
/// with every field populated must write, read back bit-identically
/// (including the v2 wall-time metadata), convert to identical CSV, and
/// render a non-empty heatmap.
int SelfTest() {
  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("sel(a)", -4, 0), Axis::Selectivity("sel(b)", -3, 0));
  TileSpec spec;
  spec.shard_id = 3;
  spec.x_begin = 1;
  spec.x_end = 4;
  spec.y_begin = 0;
  spec.y_end = 3;
  ParameterSpace sub = SliceSpace(space, spec).ValueOrDie();
  RobustnessMap map(sub, {"scan", "idx.a"});
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    for (size_t pt = 0; pt < sub.num_points(); ++pt) {
      Measurement m;
      m.seconds = 0.001 * static_cast<double>(pl * 100 + pt + 1);
      m.output_rows = pl * 10 + pt;
      m.io.sequential_reads = pt;
      m.plan_label = map.plan_label(pl);
      map.Set(pl, pt, std::move(m));
    }
  }
  MapTile tile{spec, space, std::move(map), 1.25};

  const std::string path = OutDir() + "/map_cat_selftest.rmt";
  if (Status s = WriteMapTileFile(path, tile); !s.ok()) {
    std::fprintf(stderr, "selftest: write failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  auto back = ReadMapTileFile(path);
  if (!back.ok()) {
    std::fprintf(stderr, "selftest: read failed: %s\n",
                 back.status().ToString().c_str());
    return 1;
  }
  if (!MapsBitIdentical(tile.map, back.value().map) ||
      back.value().wall_seconds != tile.wall_seconds ||
      !(back.value().spec == tile.spec)) {
    std::fprintf(stderr, "selftest: round trip not bit-identical\n");
    return 1;
  }
  std::ostringstream original, roundtrip;
  WriteMapCsv(original, tile.map);
  WriteMapCsv(roundtrip, back.value().map);
  if (original.str() != roundtrip.str() || original.str().empty()) {
    std::fprintf(stderr, "selftest: CSV conversion differs after round "
                         "trip\n");
    return 1;
  }
  HeatmapOptions hopts;
  if (RenderHeatmap(back.value().map.space(),
                    back.value().map.SecondsOfPlan(0),
                    ColorScale::AbsoluteSeconds(), hopts)
          .empty()) {
    std::fprintf(stderr, "selftest: empty heatmap render\n");
    return 1;
  }
  std::remove(path.c_str());
  std::printf("map_cat selftest: write/read/csv/ascii round trip OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kInfo, kAscii, kCsv } mode = Mode::kInfo;
  int only_plan = -1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--info") {
      mode = Mode::kInfo;
    } else if (arg == "--ascii") {
      mode = Mode::kAscii;
    } else if (arg == "--csv") {
      mode = Mode::kCsv;
    } else if (arg == "--selftest") {
      return SelfTest();
    } else if (ParseIntFlag(arg, "plan", &only_plan)) {
      // rendered plan index for --ascii
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "map_cat: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: map_cat [--info|--ascii|--csv] [--plan=K] "
                 "FILE.rmt...\n       map_cat --selftest\n");
    return 2;
  }

  for (const std::string& path : files) {
    auto tile = ReadMapTileFile(path);
    if (!tile.ok()) {
      std::fprintf(stderr, "map_cat: %s\n",
                   tile.status().ToString().c_str());
      return 1;
    }
    switch (mode) {
      case Mode::kInfo:
        PrintInfo(path, tile.value());
        break;
      case Mode::kAscii:
        PrintInfo(path, tile.value());
        PrintAscii(tile.value(), only_plan);
        break;
      case Mode::kCsv: {
        std::ostringstream os;
        WriteMapCsv(os, tile.value().map);
        std::fputs(os.str().c_str(), stdout);
        break;
      }
    }
  }
  return 0;
}
