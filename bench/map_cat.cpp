// map_cat — make binary .rmt tile and merged-map files self-serving: print
// what a file contains, render it as an ASCII heatmap, convert it to CSV
// or gnuplot data, or rasterize it to the same per-plan PPM images the
// figure benches export — without re-running any sweep. With the benches
// emitting .rmt as the canonical artifact, all derived formats (CSV,
// gnuplot dat, ASCII, PPM) come from here on demand; bench .plt scripts
// pipe their data through `--dat` rather than carrying a ready-made copy.
//
// Usage:
//   map_cat [--info] FILE...        # header summary (default)
//   map_cat --ascii [--plan=K] [--layer=L] FILE...  # terminal heatmap
//   map_cat --csv [--layer=L] FILE...    # CSV on stdout (files concatenated)
//   map_cat --dat [--layer=L] FILE...    # gnuplot data on stdout
//   map_cat --ppm [--plan=K] [--layer=L] FILE...  # FILE_[layer_]planK.ppm
//   map_cat --telemetry FILE.json...  # counter table + histogram bars
//   map_cat --cache-info DIR...     # cell-result cache summary
//   map_cat --selftest              # write+read+render round trip, exit 0/1
//
// --telemetry pretty-prints the telemetry.json sidecars the sweep drivers
// write (`sweep_shard --telemetry=FILE`, REPRO_TELEMETRY): every counter
// in a table, every latency histogram as ASCII bucket bars with
// count/sum/min/max.
//
// --cache-info inspects a cell-result cache (the --cache-dir of
// `sweep_shard` / `sweep_worker`, or its cells.rmc directly): file format
// version, fingerprint schema version (flagged when this build would
// ignore it as stale), entry count, and a per-study entry breakdown.
//
// Reads any tile format version this build's reader accepts (v1/v2 files
// are single-layer; v3 files carry one named layer per study output, e.g.
// cold/warm/delta — select with --layer, default 0). A layer named "delta"
// renders on the diverging blue/white/red scale, everything else on the
// absolute scale. Errors name the failing file and are distinct for
// truncation/corruption vs. unknown version, exactly as the library
// reports them.

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "core/cell_cache.h"
#include "core/color_scale.h"
#include "core/map_io.h"
#include "core/sweep_telemetry.h"
#include "shard_cli.h"
#include "viz/ascii_heatmap.h"
#include "viz/csv_export.h"
#include "viz/gnuplot_export.h"
#include "viz/ppm_writer.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

void PrintInfo(const std::string& path, const MapTile& tile) {
  const ParameterSpace& parent = tile.parent_space;
  std::printf("%s:\n", path.c_str());
  std::printf("  parent grid : %zux%zu (%s x %s)\n", parent.x_size(),
              parent.y_size(), parent.x().name.c_str(),
              parent.is_2d() ? parent.y().name.c_str() : "-");
  std::printf("  tile        : id %zu, cells [%zu,%zu)x[%zu,%zu) = %zu "
              "points\n",
              tile.spec.shard_id, tile.spec.x_begin, tile.spec.x_end,
              tile.spec.y_begin, tile.spec.y_end, tile.spec.num_points());
  std::printf("  wall time   : %s\n",
              tile.wall_seconds > 0
                  ? (std::to_string(tile.wall_seconds) + " s").c_str()
                  : "(unrecorded)");
  std::printf("  layers (%zu) :", tile.num_layers());
  for (size_t li = 0; li < tile.num_layers(); ++li) {
    const std::string name = tile.layer_name(li);
    std::printf(" %s", name.empty() ? "(unnamed)" : name.c_str());
  }
  std::printf("\n");
  std::printf("  plans (%zu)  :", tile.map.num_plans());
  for (const std::string& label : tile.map.plan_labels()) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n");
}

/// The scale a layer renders on: the per-cell signed delta of a warm-cold
/// study gets the diverging scale its figures use; everything else is an
/// absolute-seconds surface.
ColorScale LayerScale(const MapTile& tile, size_t layer) {
  return tile.layer_name(layer) == "delta" ? ColorScale::DivergingSeconds()
                                           : ColorScale::AbsoluteSeconds();
}

bool CheckLayer(const std::string& path, const MapTile& tile, int layer) {
  if (layer >= 0 && static_cast<size_t>(layer) < tile.num_layers()) {
    return true;
  }
  std::fprintf(stderr, "map_cat: %s has %zu layer(s); --layer=%d is out of "
               "range\n",
               path.c_str(), tile.num_layers(), layer);
  return false;
}

void PrintAscii(const MapTile& tile, size_t layer, int only_plan) {
  const RobustnessMap& map = tile.layer(layer);
  if (!map.space().is_2d()) {
    PrintCurveTable(map);
    return;
  }
  const ColorScale scale = LayerScale(tile, layer);
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    if (only_plan >= 0 && pl != static_cast<size_t>(only_plan)) continue;
    HeatmapOptions hopts;
    hopts.title = tile.layer_name(layer).empty()
                      ? map.plan_label(pl)
                      : tile.layer_name(layer) + " / " + map.plan_label(pl);
    std::printf("%s", RenderHeatmap(map.space(), map.SecondsOfPlan(pl),
                                    scale, hopts)
                          .c_str());
  }
}

/// `--ppm`: FILE.rmt becomes FILE[_layer]_planK.ppm next to the input, on
/// the layer's scale — the same images the figure benches export.
int WritePpms(const std::string& path, const MapTile& tile, size_t layer,
              int only_plan) {
  const RobustnessMap& map = tile.layer(layer);
  if (!map.space().is_2d()) {
    std::fprintf(stderr, "map_cat: %s is 1-D; PPM rendering needs a 2-D "
                 "map (use --csv or --ascii)\n",
                 path.c_str());
    return 1;
  }
  std::string base = path;
  if (base.size() > 4 && base.substr(base.size() - 4) == ".rmt") {
    base.resize(base.size() - 4);
  }
  if (!tile.layer_name(layer).empty()) {
    base += '_';
    base += tile.layer_name(layer);
  }
  const ColorScale scale = LayerScale(tile, layer);
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    if (only_plan >= 0 && pl != static_cast<size_t>(only_plan)) continue;
    const std::string out = base + "_plan" + std::to_string(pl) + ".ppm";
    if (Status s = WritePpm(out, map.space(), map.SecondsOfPlan(pl), scale);
        !s.ok()) {
      std::fprintf(stderr, "map_cat: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("map_cat: wrote %s\n", out.c_str());
  }
  return 0;
}

/// Engineering notation for histogram bounds: "1u" .. "500m" .. "100".
/// Seconds-scale bounds print bare; the ladder has no fractional mantissas
/// so three significant digits always suffice.
std::string BoundLabel(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%gu", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%gm", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", seconds);
  }
  return buf;
}

/// `--telemetry`: counters as a table, histograms as ASCII bucket bars
/// scaled to the fullest bucket. Empty buckets are skipped — the fixed
/// 26-slot ladder would otherwise drown every histogram in blank rows.
int PrintTelemetry(const std::string& path) {
  auto data = ReadTelemetryFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "map_cat: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("%s:\n", path.c_str());
  if (!data.value().counters.empty()) {
    TextTable table({"counter", "value"});
    for (const auto& [name, value] : data.value().counters) {
      table.AddRow({name, std::to_string(value)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  const std::vector<double>& bounds = LatencyHistogram::Bounds();
  for (const auto& [name, h] : data.value().histograms) {
    std::printf("\n%s: count=%llu sum=%.6gs min=%.6gs max=%.6gs\n",
                name.c_str(), static_cast<unsigned long long>(h.count),
                h.sum_seconds, h.min_seconds, h.max_seconds);
    const uint64_t fullest =
        *std::max_element(h.buckets.begin(), h.buckets.end());
    if (fullest == 0) continue;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      const std::string label =
          i < bounds.size() ? "<= " + BoundLabel(bounds[i]) + "s"
                            : " > " + BoundLabel(bounds.back()) + "s";
      const int bar = static_cast<int>(
          1 + (h.buckets[i] * 40) / fullest);  // 1..41 chars, never empty
      std::printf("  %-10s %8llu %.*s\n", label.c_str(),
                  static_cast<unsigned long long>(h.buckets[i]), bar,
                  "#########################################");
    }
  }
  return 0;
}

/// `--cache-info`: the summary of a cell-result cache. Accepts the cache
/// *directory* (what the sweep drivers take as --cache-dir) or the
/// cells.rmc inside it. The reader's distinct truncation / corruption /
/// unknown-version errors pass through verbatim; a stale fingerprint
/// schema is not an error here — the whole point of the inspector is
/// seeing what a sweep would silently start over from.
int PrintCacheInfo(const std::string& arg) {
  std::string path = arg;
  if (path.size() < 4 || path.substr(path.size() - 4) != ".rmc") {
    path = CellCacheFileName(arg);
  }
  auto data = ReadCellCacheFile(path);
  if (!data.ok()) {
    std::fprintf(stderr, "map_cat: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("%s:\n", path.c_str());
  std::printf("  format version     : %u\n", kCellCacheFormatVersion);
  const std::string stale =
      data.value().fingerprint_schema == kCellCacheFingerprintSchemaVersion
          ? ""
          : " (stale; this build keys under schema " +
                std::to_string(kCellCacheFingerprintSchemaVersion) +
                " and would ignore these entries)";
  std::printf("  fingerprint schema : %u%s\n", data.value().fingerprint_schema,
              stale.c_str());
  std::printf("  entries            : %zu\n", data.value().entries.size());
  if (data.value().entries.empty()) return 0;
  std::map<std::string, size_t> by_study;
  for (const CellCacheEntry& e : data.value().entries) {
    ++by_study[e.study.empty() ? "(unnamed)" : e.study];
  }
  TextTable table({"study", "entries"});
  for (const auto& [study, count] : by_study) {
    table.AddRow({study, std::to_string(count)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

/// The round-trip smoke test ctest runs: a synthetic sub-rectangle tile
/// with every field populated must write, read back bit-identically
/// (including wall-time metadata), convert to identical CSV, render a
/// non-empty heatmap — and the same must hold for a three-layer warm-cold
/// tile, whose layers and names must survive the trip and whose PPM
/// rendering must succeed per layer.
int SelfTest() {
  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("sel(a)", -4, 0), Axis::Selectivity("sel(b)", -3, 0));
  TileSpec spec;
  spec.shard_id = 3;
  spec.x_begin = 1;
  spec.x_end = 4;
  spec.y_begin = 0;
  spec.y_end = 3;
  ParameterSpace sub = SliceSpace(space, spec).ValueOrDie();
  RobustnessMap map(sub, {"scan", "idx.a"});
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    for (size_t pt = 0; pt < sub.num_points(); ++pt) {
      Measurement m;
      m.seconds = 0.001 * static_cast<double>(pl * 100 + pt + 1);
      m.output_rows = pl * 10 + pt;
      m.io.sequential_reads = pt;
      m.plan_label = map.plan_label(pl);
      map.Set(pl, pt, std::move(m));
    }
  }
  MapTile tile{spec, space, std::move(map), 1.25};

  const std::string path = OutDir() + "/map_cat_selftest.rmt";
  if (Status s = WriteMapTileFile(path, tile); !s.ok()) {
    std::fprintf(stderr, "selftest: write failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  auto back = ReadMapTileFile(path);
  if (!back.ok()) {
    std::fprintf(stderr, "selftest: read failed: %s\n",
                 back.status().ToString().c_str());
    return 1;
  }
  if (!MapsBitIdentical(tile.map, back.value().map) ||
      back.value().wall_seconds != tile.wall_seconds ||
      !(back.value().spec == tile.spec)) {
    std::fprintf(stderr, "selftest: round trip not bit-identical\n");
    return 1;
  }
  std::ostringstream original, roundtrip;
  WriteMapCsv(original, tile.map);
  WriteMapCsv(roundtrip, back.value().map);
  if (original.str() != roundtrip.str() || original.str().empty()) {
    std::fprintf(stderr, "selftest: CSV conversion differs after round "
                         "trip\n");
    return 1;
  }
  std::ostringstream dat_original, dat_roundtrip;
  WriteGnuplotDat(dat_original, tile.map);
  WriteGnuplotDat(dat_roundtrip, back.value().map);
  if (dat_original.str() != dat_roundtrip.str() ||
      dat_original.str().empty()) {
    std::fprintf(stderr, "selftest: gnuplot dat conversion differs after "
                         "round trip\n");
    return 1;
  }
  HeatmapOptions hopts;
  if (RenderHeatmap(back.value().map.space(),
                    back.value().map.SecondsOfPlan(0),
                    ColorScale::AbsoluteSeconds(), hopts)
          .empty()) {
    std::fprintf(stderr, "selftest: empty heatmap render\n");
    return 1;
  }

  // Multi-layer leg: a warm-cold-shaped tile (three named layers) must
  // survive the same trip with layers, names, and per-layer cells intact,
  // and must rasterize per layer through the --ppm path.
  MapTile wc = tile;
  wc.layer_names = {"cold", "warm", "delta"};
  RobustnessMap warm = wc.map;
  for (size_t pl = 0; pl < warm.num_plans(); ++pl) {
    for (size_t pt = 0; pt < warm.space().num_points(); ++pt) {
      Measurement m = warm.At(pl, pt);
      m.seconds *= 0.5;
      warm.Set(pl, pt, std::move(m));
    }
  }
  wc.extra_layers = {warm, DiffMaps(warm, wc.map).ValueOrDie()};
  const std::string wc_path = OutDir() + "/map_cat_selftest_wc.rmt";
  if (Status s = WriteMapTileFile(wc_path, wc); !s.ok()) {
    std::fprintf(stderr, "selftest: multi-layer write failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  auto wc_back = ReadMapTileFile(wc_path);
  if (!wc_back.ok()) {
    std::fprintf(stderr, "selftest: multi-layer read failed: %s\n",
                 wc_back.status().ToString().c_str());
    return 1;
  }
  if (wc_back.value().num_layers() != 3 ||
      wc_back.value().layer_names != wc.layer_names ||
      !MapsBitIdentical(wc_back.value().layer(1), warm) ||
      !MapsBitIdentical(wc_back.value().layer(2), wc.extra_layers[1])) {
    std::fprintf(stderr, "selftest: multi-layer round trip mangled\n");
    return 1;
  }
  for (size_t li = 0; li < 3; ++li) {
    if (WritePpms(wc_path, wc_back.value(), li, /*only_plan=*/0) != 0) {
      return 1;
    }
  }
  std::remove(path.c_str());
  std::remove(wc_path.c_str());
  for (const char* layer : {"cold", "warm", "delta"}) {
    std::remove((OutDir() + "/map_cat_selftest_wc_" + layer + "_plan0.ppm")
                    .c_str());
  }

  // Telemetry leg: a sink with counters and a histogram must serialize,
  // read back equal, and pretty-print through the --telemetry path.
  SweepTelemetry& telemetry = SweepTelemetry::Get();
  telemetry.Reset();
  telemetry.Enable();
  telemetry.AddCounter("selftest.cells", 42);
  telemetry.AddCounter("selftest.hits", 7);
  telemetry.RecordLatency("selftest.cell_seconds", 3e-6);
  telemetry.RecordLatency("selftest.cell_seconds", 0.02);
  telemetry.RecordLatency("selftest.cell_seconds", 150.0);  // overflow slot
  const std::string tpath = OutDir() + "/map_cat_selftest_telemetry.json";
  if (Status s = telemetry.WriteFile(tpath); !s.ok()) {
    std::fprintf(stderr, "selftest: telemetry write failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  auto tdata = ReadTelemetryFile(tpath);
  if (!tdata.ok()) {
    std::fprintf(stderr, "selftest: telemetry read failed: %s\n",
                 tdata.status().ToString().c_str());
    return 1;
  }
  const LatencyHistogram& th =
      tdata.value().histograms["selftest.cell_seconds"];
  if (tdata.value().counters != telemetry.Counters() || th.count != 3 ||
      th.buckets.back() != 1 || th.min_seconds != 3e-6 ||
      th.max_seconds != 150.0) {
    std::fprintf(stderr, "selftest: telemetry round trip mangled\n");
    return 1;
  }
  if (PrintTelemetry(tpath) != 0) return 1;
  telemetry.Reset();
  telemetry.Disable();
  std::remove(tpath.c_str());

  // Cache-inspector leg: a small cell-result cache must round-trip with
  // its fingerprint schema and per-study entries intact, and must print
  // through the --cache-info path (here via its .rmc directly — the
  // directory form just appends the canonical file name).
  CellCacheData cdata;
  for (uint64_t i = 0; i < 3; ++i) {
    CellCacheEntry e;
    e.fingerprint = 0x1000 + i;
    e.study = i < 2 ? "plain" : "warmcold";
    e.m.seconds = 0.25 * static_cast<double>(i + 1);
    e.m.plan_label = "scan";
    cdata.entries.push_back(std::move(e));
  }
  const std::string cpath = OutDir() + "/map_cat_selftest_cells.rmc";
  if (Status s = WriteCellCacheFile(cpath, cdata); !s.ok()) {
    std::fprintf(stderr, "selftest: cache write failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  auto cback = ReadCellCacheFile(cpath);
  if (!cback.ok()) {
    std::fprintf(stderr, "selftest: cache read failed: %s\n",
                 cback.status().ToString().c_str());
    return 1;
  }
  if (cback.value().fingerprint_schema != kCellCacheFingerprintSchemaVersion ||
      cback.value().entries.size() != 3 ||
      cback.value().entries[2].study != "warmcold" ||
      cback.value().entries[1].m.seconds != 0.5) {
    std::fprintf(stderr, "selftest: cache round trip mangled\n");
    return 1;
  }
  if (PrintCacheInfo(cpath) != 0) return 1;
  std::remove(cpath.c_str());

  std::printf("map_cat selftest: write/read/csv/dat/ascii/ppm/telemetry/"
              "cache round trips OK (single and multi-layer)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode {
    kInfo,
    kAscii,
    kCsv,
    kDat,
    kPpm,
    kTelemetry,
    kCacheInfo
  } mode = Mode::kInfo;
  int only_plan = -1;
  int layer = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--info") {
      mode = Mode::kInfo;
    } else if (arg == "--ascii") {
      mode = Mode::kAscii;
    } else if (arg == "--csv") {
      mode = Mode::kCsv;
    } else if (arg == "--dat") {
      mode = Mode::kDat;
    } else if (arg == "--ppm") {
      mode = Mode::kPpm;
    } else if (arg == "--telemetry") {
      mode = Mode::kTelemetry;
    } else if (arg == "--cache-info") {
      mode = Mode::kCacheInfo;
    } else if (arg == "--selftest") {
      return SelfTest();
    } else if (ParseIntFlag(arg, "plan", &only_plan)) {
      // rendered plan index for --ascii / --ppm
    } else if (ParseIntFlag(arg, "layer", &layer)) {
      // rendered layer index for multi-layer tiles
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "map_cat: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: map_cat [--info|--ascii|--csv|--dat|--ppm] "
                 "[--plan=K] [--layer=L] FILE.rmt...\n"
                 "       map_cat --telemetry FILE.json...\n"
                 "       map_cat --cache-info DIR...\n"
                 "       map_cat --selftest\n");
    return 2;
  }

  for (const std::string& path : files) {
    if (mode == Mode::kTelemetry) {
      if (PrintTelemetry(path) != 0) return 1;
      continue;
    }
    if (mode == Mode::kCacheInfo) {
      if (PrintCacheInfo(path) != 0) return 1;
      continue;
    }
    auto tile = ReadMapTileFile(path);
    if (!tile.ok()) {
      std::fprintf(stderr, "map_cat: %s\n",
                   tile.status().ToString().c_str());
      return 1;
    }
    if (mode != Mode::kInfo && !CheckLayer(path, tile.value(), layer)) {
      return 2;
    }
    switch (mode) {
      case Mode::kInfo:
        PrintInfo(path, tile.value());
        break;
      case Mode::kAscii:
        PrintInfo(path, tile.value());
        PrintAscii(tile.value(), static_cast<size_t>(layer), only_plan);
        break;
      case Mode::kCsv: {
        std::ostringstream os;
        WriteMapCsv(os, tile.value().layer(static_cast<size_t>(layer)));
        std::fputs(os.str().c_str(), stdout);
        break;
      }
      case Mode::kDat: {
        std::ostringstream os;
        WriteGnuplotDat(os, tile.value().layer(static_cast<size_t>(layer)));
        std::fputs(os.str().c_str(), stdout);
        break;
      }
      case Mode::kPpm:
        if (WritePpms(path, tile.value(), static_cast<size_t>(layer),
                      only_plan) != 0) {
          return 1;
        }
        break;
      case Mode::kTelemetry:
      case Mode::kCacheInfo:
        break;  // handled before the tile read above
    }
  }
  return 0;
}
