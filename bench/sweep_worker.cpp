// One worker of a sharded sweep: rebuilds the study environment from its
// flags, computes exactly one grid tile, and writes it as a checkpointed
// binary tile file (v2 — carrying the sweep's wall time, the cost feedback
// later coordinator runs reschedule from). Normally spawned by
// `sweep_shard` (which appends --tile/--rect/--out to its own grid flags),
// but equally runnable by hand or from a cluster scheduler — a tile file is
// self-describing, so tiles computed anywhere merge as long as the grid
// flags match.
//
// Usage:
//   sweep_worker --tiles=N --tile=K --out=PATH
//                [--rect=X0:X1:Y0:Y1]
//                [--row-bits=16] [--min-log2=-8] [--steps-per-octave=1]
//                [--plans=all|smoke] [--threads=1]
//
// With --rect the tile rectangle is taken verbatim (the coordinator's
// cost-weighted cuts depend on its model, so the exact boundaries are part
// of the contract); without it the worker re-derives tile K of the uniform
// N-way partition, the pre-cost-model contract, still honored so old
// driver scripts keep working.
//
// On failure, writes the error to PATH.err (the coordinator reads it back)
// and exits non-zero.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/sharded_sweep.h"
#include "shard_cli.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

int Fail(const std::string& out, const Status& s) {
  std::fprintf(stderr, "sweep_worker: %s\n", s.ToString().c_str());
  if (!out.empty()) WriteTileErrFile(out, s);
  return 1;
}

/// "X0:X1:Y0:Y1" (grid indices, half-open) into the four rectangle fields.
bool ParseRect(const std::string& raw, TileSpec* spec) {
  size_t* fields[4] = {&spec->x_begin, &spec->x_end, &spec->y_begin,
                       &spec->y_end};
  size_t pos = 0;
  for (int f = 0; f < 4; ++f) {
    const size_t colon = raw.find(':', pos);
    const std::string part = raw.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &end, 10);
    if (part.empty() || end == part.c_str() || *end != '\0') return false;
    *fields[f] = static_cast<size_t>(v);
    if (f < 3) {
      if (colon == std::string::npos) return false;
      pos = colon + 1;
    } else if (colon != std::string::npos) {
      return false;  // trailing fifth field
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ShardGrid grid;
  int tiles = 0;
  int tile_id = -1;
  int threads = 1;
  std::string out;
  std::string rect;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseGridFlag(arg, &grid) || ParseIntFlag(arg, "tiles", &tiles) ||
        ParseIntFlag(arg, "tile", &tile_id) ||
        ParseIntFlag(arg, "threads", &threads) ||
        ParseFlag(arg, "out", &out) || ParseFlag(arg, "rect", &rect)) {
      continue;
    }
    std::fprintf(stderr, "sweep_worker: unknown flag %s\n", arg.c_str());
    return 2;
  }
  if (tiles <= 0 || tile_id < 0 || out.empty()) {
    std::fprintf(stderr,
                 "usage: sweep_worker --tiles=N --tile=K --out=PATH "
                 "[--rect=X0:X1:Y0:Y1] [--row-bits=..] [--min-log2=..] "
                 "[--steps-per-octave=..] [--plans=all|smoke] "
                 "[--threads=..]\n");
    return 2;
  }
  std::vector<PlanKind> plans = GridPlans(grid);
  if (plans.empty()) {
    return Fail(out,
                Status::InvalidArgument("unknown plan set " + grid.plan_set));
  }

  ParameterSpace space = MakeGridSpace(grid);
  TileSpec spec;
  spec.shard_id = static_cast<size_t>(tile_id);
  if (!rect.empty()) {
    // The coordinator's exact (possibly cost-weighted) cuts; SliceSpace
    // validation below rejects a rectangle that doesn't fit this grid.
    if (!ParseRect(rect, &spec)) {
      return Fail(out, Status::InvalidArgument(
                           "--rect=" + rect +
                           " is not X0:X1:Y0:Y1 grid indices"));
    }
  } else {
    auto tile_plan =
        ShardPlanner::Partition(space, static_cast<size_t>(tiles));
    if (!tile_plan.ok()) return Fail(out, tile_plan.status());
    const TileSpec* found = nullptr;
    for (const TileSpec& t : tile_plan.value()) {
      if (t.shard_id == static_cast<size_t>(tile_id)) found = &t;
    }
    if (found == nullptr) {
      return Fail(out, Status::InvalidArgument(
                           "tile " + std::to_string(tile_id) +
                           " does not exist in a " + std::to_string(tiles) +
                           "-way partition of this grid"));
    }
    spec = *found;
  }
  if (auto sub = SliceSpace(space, spec); !sub.ok()) {
    return Fail(out, sub.status());
  }

  auto env = MakeGridEnvironment(grid);
  SweepOptions opts;
  opts.num_threads = static_cast<unsigned>(threads < 1 ? 1 : threads);
  Status s = ComputeAndWriteTile(env->ctx(), env->executor(), plans, space,
                                 spec, out, opts);
  if (!s.ok()) return Fail(out, s);
  std::printf("sweep_worker: tile %d/%d (%zux%zu cells x %zu plans) -> %s\n",
              tile_id, tiles, spec.x_size(), spec.y_size(), plans.size(),
              out.c_str());
  return 0;
}
