// One worker of a sharded sweep: rebuilds the study environment from its
// flags, computes exactly one grid tile of the requested study, and writes
// it as a checkpointed binary tile file (single-layer for the plain study,
// one named layer per study output otherwise; v2/v3 wall-time metadata is
// the cost feedback later coordinator runs reschedule from). Normally
// spawned by `sweep_shard` (which appends --tile/--rect/--study/--out to
// its own grid flags), but equally runnable by hand or from a cluster
// scheduler — a tile file is self-describing, so tiles computed anywhere
// merge as long as the grid flags match.
//
// Usage:
//   sweep_worker --tiles=N --tile=K --out=PATH
//                [--rect=X0:X1:Y0:Y1] [--stride=K]
//                [--study=plain|warmcold] [--warmup=SPEC]
//                [--row-bits=16] [--min-log2=-8] [--steps-per-octave=1]
//                [--plans=all|smoke] [--threads=1] [--cache-dir=DIR]
//                [--trace=FILE] [--trace-epoch=NS] [--telemetry=FILE]
//
// --trace / --telemetry write this worker's spans and counters as sidecar
// files the coordinator merges at reap time; --trace-epoch aligns the
// worker's span timestamps to the coordinator's time axis (a raw
// CLOCK_MONOTONIC reading, valid across processes on one boot). These are
// explicit flags only — a worker never reads REPRO_TRACE, or every worker
// inherited from one environment would clobber the same file.
//
// With --rect the tile rectangle is taken verbatim (the coordinator's
// cost-weighted cuts depend on its model, so the exact boundaries are part
// of the contract); without it the worker re-derives tile K of the uniform
// N-way partition, the pre-cost-model contract, still honored so old
// driver scripts keep working. --warmup (see WarmupPolicy::FromSpec for
// the grammar) is the warm layer's policy for --study=warmcold and the
// measurement policy for a plain study; it must be order-independent —
// prior-run warmth cannot cross the tile boundaries sharding erases.
//
// --stride=K subsamples the grid to its stride-K lattice *before* tile
// resolution — the coarse levels of a progressive sweep, whose --rect
// cuts are indices into the subsampled space. --cache-dir points at a
// cell-result cache directory (see core/cell_cache.h); the worker
// consults it read-only — already-measured cells are copied into the
// tile instead of re-measured — and never flushes, so N concurrent
// workers share one cache file without racing on it (the coordinator
// publishes the merged results back).
//
// On failure, writes the error to PATH.err (the coordinator reads it back)
// and exits non-zero.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/cell_cache.h"
#include "core/parameter_space.h"
#include "core/sharded_sweep.h"
#include "core/sweep_telemetry.h"
#include "shard_cli.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

int Fail(const std::string& out, const Status& s) {
  std::fprintf(stderr, "sweep_worker: %s\n", s.ToString().c_str());
  if (!out.empty()) WriteTileErrFile(out, s);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ShardGrid grid;
  int tiles = 0;
  int tile_id = -1;
  int threads = 1;
  int stride = 1;
  std::string out;
  std::string rect;
  std::string cache_dir;
  std::string study_name = "plain";
  std::string warmup_spec = "cold";
  std::string trace_path;
  std::string trace_epoch;
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseGridFlag(arg, &grid) || ParseIntFlag(arg, "tiles", &tiles) ||
        ParseIntFlag(arg, "tile", &tile_id) ||
        ParseIntFlag(arg, "threads", &threads) ||
        ParseIntFlag(arg, "stride", &stride) ||
        ParseFlag(arg, "out", &out) || ParseFlag(arg, "rect", &rect) ||
        ParseFlag(arg, "cache-dir", &cache_dir) ||
        ParseFlag(arg, "study", &study_name) ||
        ParseFlag(arg, "warmup", &warmup_spec) ||
        ParseFlag(arg, "trace", &trace_path) ||
        ParseFlag(arg, "trace-epoch", &trace_epoch) ||
        ParseFlag(arg, "telemetry", &telemetry_path)) {
      continue;
    }
    std::fprintf(stderr, "sweep_worker: unknown flag %s\n", arg.c_str());
    return 2;
  }
  if (tiles <= 0 || tile_id < 0 || out.empty()) {
    std::fprintf(stderr,
                 "usage: sweep_worker --tiles=N --tile=K --out=PATH "
                 "[--rect=X0:X1:Y0:Y1] [--stride=K] "
                 "[--study=plain|warmcold] [--warmup=SPEC] "
                 "[--row-bits=..] [--min-log2=..] "
                 "[--steps-per-octave=..] [--plans=all|smoke] "
                 "[--threads=..] [--cache-dir=DIR]\n");
    return 2;
  }
  // Every remaining rejection leaves a PATH.err for the coordinator: a
  // worker that dies without saying why turns a config typo into a
  // "killed?" mystery at the other end of the process boundary.
  auto study = StudyKindFromString(study_name);
  if (!study.ok()) return Fail(out, study.status());
  auto warmup = WarmupPolicy::FromSpec(warmup_spec);
  if (!warmup.ok()) return Fail(out, warmup.status());
  if (warmup.value().is_order_dependent()) {
    return Fail(out, Status::InvalidArgument(
                         "--warmup=" + warmup_spec +
                         " is order-dependent; a tile worker cannot "
                         "inherit cache state across tile boundaries"));
  }
  std::vector<PlanKind> plans = GridPlans(grid);
  if (plans.empty()) {
    return Fail(out,
                Status::InvalidArgument("unknown plan set " + grid.plan_set));
  }
  if (!trace_path.empty()) {
    if (!trace_epoch.empty()) {
      char* end = nullptr;
      const long long epoch = std::strtoll(trace_epoch.c_str(), &end, 10);
      if (end == trace_epoch.c_str() || *end != '\0') {
        return Fail(out, Status::InvalidArgument(
                             "--trace-epoch=" + trace_epoch +
                             " is not an integer nanosecond reading"));
      }
      Tracer::Get().SetEpochNs(epoch);
    }
    Tracer::Get().Enable();
  }
  if (!telemetry_path.empty()) SweepTelemetry::Get().Enable();

  if (stride < 1) {
    return Fail(out, Status::InvalidArgument(
                         "--stride=" + std::to_string(stride) +
                         " must be a positive lattice stride"));
  }
  ParameterSpace space = MakeGridSpace(grid);
  // Progressive coarse levels: the coordinator partitioned the stride-K
  // lattice, so its --rect indices only make sense against the same
  // subsampled space.
  if (stride > 1) space = SubsampleSpace(space, static_cast<size_t>(stride));
  TileSpec spec;
  spec.shard_id = static_cast<size_t>(tile_id);
  if (!rect.empty()) {
    // The coordinator's exact (possibly cost-weighted) cuts; SliceSpace
    // validation below rejects a rectangle that doesn't fit this grid.
    if (!ParseRectSpec(rect, &spec)) {
      return Fail(out, Status::InvalidArgument(
                           "--rect=" + rect +
                           " is not X0:X1:Y0:Y1 grid indices"));
    }
  } else {
    auto tile_plan =
        ShardPlanner::Partition(space, static_cast<size_t>(tiles));
    if (!tile_plan.ok()) return Fail(out, tile_plan.status());
    const TileSpec* found = nullptr;
    for (const TileSpec& t : tile_plan.value()) {
      if (t.shard_id == static_cast<size_t>(tile_id)) found = &t;
    }
    if (found == nullptr) {
      return Fail(out, Status::InvalidArgument(
                           "tile " + std::to_string(tile_id) +
                           " does not exist in a " + std::to_string(tiles) +
                           "-way partition of this grid"));
    }
    spec = *found;
  }
  if (auto sub = SliceSpace(space, spec); !sub.ok()) {
    return Fail(out, sub.status());
  }

  auto env = [&] {
    TraceSpan span("worker.build_env", "worker");
    return MakeGridEnvironment(grid);
  }();
  // A plain study measures under the context's policy; a warm-cold study
  // keeps the context cold (its cold layer) and warms only the warm layer.
  if (study.value() == StudyKind::kPlainMap) {
    env->ctx()->warmup = warmup.value();
  }
  // Read-only cache consultation: hits skip the measurement, misses stay
  // in this process's memory. Only the coordinator flushes — one writer,
  // however many workers race through the same directory.
  CellResultCache cache;
  if (!cache_dir.empty()) cache.Open(cache_dir);
  SweepOptions opts;
  opts.num_threads = static_cast<unsigned>(threads < 1 ? 1 : threads);
  Status s = ComputeAndWriteTile(env->ctx(), env->executor(), plans, space,
                                 spec, out, opts, study.value(),
                                 warmup.value(),
                                 cache_dir.empty() ? nullptr : &cache);
  if (!s.ok()) return Fail(out, s);
  // Sidecars are best-effort: a failed observability write degrades the
  // trace, never the tile the coordinator is waiting on.
  if (!trace_path.empty()) {
    if (Status ts = Tracer::Get().WriteFile(trace_path); !ts.ok()) {
      std::fprintf(stderr, "sweep_worker: %s\n", ts.ToString().c_str());
    }
  }
  if (!telemetry_path.empty()) {
    if (Status ms = SweepTelemetry::Get().WriteFile(telemetry_path);
        !ms.ok()) {
      std::fprintf(stderr, "sweep_worker: %s\n", ms.ToString().c_str());
    }
  }
  std::printf(
      "sweep_worker: tile %d/%d (%zux%zu cells x %zu plans, %s) -> %s\n",
      tile_id, tiles, spec.x_size(), spec.y_size(), plans.size(),
      StudyKindName(study.value()), out.c_str());
  return 0;
}
