// Ablation (paper §4, future work): sort spill behavior.
//
// "We expect that some implementations of sorting spill their entire input
// to disk if the input size exceeds the memory size by merely a single
// record. Those sort implementations lacking graceful degradation will show
// discontinuous execution costs." This bench builds both implementations and
// shows exactly that discontinuity — and its absence under graceful
// degradation — as a 1-D robustness map over input size.

#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "common/rng.h"
#include "core/landmarks.h"
#include "core/sweep.h"
#include "exec/sort.h"
#include "viz/ascii_heatmap.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

// Pipelined row source standing in for an arbitrary sub-plan: emits `n`
// rows with pseudo-random sort keys at index-entry CPU cost, so the
// measured curve isolates the *sort's* behavior.
class RowGeneratorOp : public Operator {
 public:
  explicit RowGeneratorOp(uint64_t n) : n_(n) {}

  Status Open(RunContext* ctx) override {
    (void)ctx;
    next_ = 0;
    return Status::OK();
  }
  bool Next(RunContext* ctx, Row* out) override {
    if (next_ >= n_) return false;
    ctx->ChargeCpuOps(1, ctx->cpu.index_entry_seconds);
    out->rid = next_;
    out->valid_cols = 0;
    out->SetCol(0, static_cast<int64_t>(Mix64(next_)));
    ++next_;
    return true;
  }
  void Close(RunContext* ctx) override { (void)ctx; }
  std::string DebugName() const override {
    return "RowGenerator(" + std::to_string(n_) + ")";
  }

 private:
  uint64_t n_;
  uint64_t next_ = 0;
};

// Cold-runs a generated input of `rows` rows into a sort on col 0.
Result<Measurement> RunSortRows(RunContext* ctx, uint64_t rows,
                                SpillKind kind) {
  auto source = std::make_unique<RowGeneratorOp>(rows);
  SortKeySpec key;
  key.kind = SortKeySpec::Kind::kColumn;
  key.column = 0;
  SortOp sort(std::move(source), key, kind);

  ctx->ColdStart();
  IoStats before = ctx->device->stats();
  VirtualStopwatch watch(ctx->clock);
  auto drained = DrainCount(ctx, &sort);
  RM_RETURN_IF_ERROR(drained.status());
  Measurement m;
  m.seconds = watch.elapsed_seconds();
  m.output_rows = drained.value();
  m.io = ctx->device->stats().Delta(before);
  return m;
}

}  // namespace

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18, /*min_log2=*/-10);
  PrintHeader("Ablation: sort spill discontinuity (paper §4)",
              "a naive sort spills its whole input one record past memory -> "
              "discontinuous cost; a graceful external sort degrades "
              "smoothly",
              scale);
  auto env = MakeEnvironment(scale);
  // Put the memory boundary at half the table so it falls where both CPU
  // and I/O are substantial (the cliff is then the full input's I/O, not a
  // single seek).
  env->ctx()->sort_memory_bytes = (uint64_t{1} << scale.row_bits) * 8;
  uint64_t mem = env->ctx()->sort_memory_bytes;
  std::printf("sort work memory: %s (inputs are 16-byte rows; boundary at "
              "%s rows)\n\n",
              FormatBytes(mem).c_str(), FormatCount(mem / 16).c_str());

  uint64_t table_rows = env->table().num_rows();
  ParameterSpace space = ParameterSpace::OneD(Axis::SelectivityFine(
      "input fraction of table", scale.grid_min_log2, 0, 2));
  RunContextFactory factory(*env->ctx());
  auto map = SweepEngine::RunCellsParallel(
                 space, {"sort.graceful", "sort.naive"}, factory,
                 [&](RunContext* ctx, size_t plan, double x, double) {
                   uint64_t rows = static_cast<uint64_t>(
                       x * static_cast<double>(table_rows));
                   return RunSortRows(ctx, rows,
                                      plan == 0 ? SpillKind::kGraceful
                                                : SpillKind::kNaive);
                 },
                 SweepOpts(scale))
                 .ValueOrDie();

  PrintCurveTable(map);

  std::vector<ChartSeries> series = {
      {"sort.graceful", map.SecondsOfPlan(0)},
      {"sort.naive", map.SecondsOfPlan(1)},
  };
  ChartOptions copts;
  copts.title = "\nsort cost vs. input size (log-log)";
  copts.x_label = "input size as fraction of table";
  std::printf("%s", RenderChart(space.x().values, series, copts).c_str());

  LandmarkOptions lopts;
  lopts.discontinuity_ratio = 2.3;  // natural half-octave growth is ~1.4x
  auto graceful = AnalyzeCurve(space.x().values, map.SecondsOfPlan(0), lopts);
  auto naive = AnalyzeCurve(space.x().values, map.SecondsOfPlan(1), lopts);
  std::printf("\ndiscontinuities (cost jump > %.1fx between adjacent "
              "half-octave points):\n",
              lopts.discontinuity_ratio);
  std::printf("  graceful: %zu (expected 0)\n",
              graceful.discontinuities.size());
  std::printf("  naive:    %zu (expected >= 1)\n",
              naive.discontinuities.size());
  for (const auto& d : naive.discontinuities) {
    std::printf("    jump of %.2fx between input fractions %s and %s\n",
                d.ratio, FormatSelectivity(d.x_from).c_str(),
                FormatSelectivity(d.x_to).c_str());
  }

  // The paper's literal claim: "spill their entire input to disk if the
  // input size exceeds the memory size by merely a single record."
  uint64_t boundary = mem / 16;
  double g_at = RunSortRows(env->ctx(), boundary, SpillKind::kGraceful)
                    .ValueOrDie()
                    .seconds;
  double g_over = RunSortRows(env->ctx(), boundary + 1, SpillKind::kGraceful)
                      .ValueOrDie()
                      .seconds;
  double n_at = RunSortRows(env->ctx(), boundary, SpillKind::kNaive)
                    .ValueOrDie()
                    .seconds;
  double n_over = RunSortRows(env->ctx(), boundary + 1, SpillKind::kNaive)
                      .ValueOrDie()
                      .seconds;
  std::printf("\ncost of ONE extra input record at the memory boundary "
              "(%s rows):\n",
              FormatCount(boundary).c_str());
  std::printf("  graceful: %s -> %s (+%.0f%%)\n", FormatSeconds(g_at).c_str(),
              FormatSeconds(g_over).c_str(), (g_over / g_at - 1) * 100);
  std::printf("  naive:    %s -> %s (+%.0f%%)  <- the whole input's I/O "
              "lands at once\n",
              FormatSeconds(n_at).c_str(), FormatSeconds(n_over).c_str(),
              (n_over / n_at - 1) * 100);

  ExportMap("ablation_sort_spill", map);
  return 0;
}
