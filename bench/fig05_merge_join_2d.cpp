// Figure 5: two-index merge join, 2-D absolute cost map.
//
// "The symmetry in this diagram indicates that the two dimensions have very
// similar effects. Hash join plans perform better in some cases but do not
// exhibit this symmetry" (§3.2, citing [GLS94]).

#include <cstdio>

#include "bench_util.h"
#include "core/landmarks.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"

using namespace robustmap;
using namespace robustmap::bench;

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Figure 5: two-index merge join (2-D)",
              "the merge-join surface is symmetric in the two selectivities; "
              "the hash join is not",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));
  auto map = RunStudyMap(env.get(),
                         {PlanKind::kMergeJoinAB, PlanKind::kHashJoinAB},
                         space, scale);

  ColorScale cs = ColorScale::AbsoluteSeconds();
  HeatmapOptions hopts;
  hopts.title = "\nFigure 5: idx(a) merge-join idx(b), absolute time";
  std::printf(
      "%s", RenderHeatmap(space, map.SecondsOfPlan(0), cs, hopts).c_str());
  std::printf("%s", RenderLegend(cs).c_str());

  SymmetryScore mj = ComputeSymmetry(space, map.SecondsOfPlan(0));
  SymmetryScore hj = ComputeSymmetry(space, map.SecondsOfPlan(1));
  std::printf("\nsymmetry under (s_a, s_b) -> (s_b, s_a):\n");
  std::printf("  merge join: max |log2 ratio| = %.3f, mean = %.3f  -> %s\n",
              mj.max_abs_log2_ratio, mj.mean_abs_log2_ratio,
              mj.is_symmetric() ? "symmetric (as the paper observes)"
                                : "NOT symmetric");
  std::printf("  hash join:  max |log2 ratio| = %.3f, mean = %.3f  -> %s\n",
              hj.max_abs_log2_ratio, hj.mean_abs_log2_ratio,
              hj.is_symmetric() ? "symmetric"
                                : "NOT symmetric (as the paper predicts)");

  ExportMap("fig05_merge_join_2d", map);
  return 0;
}
